//! Calibration of the fast-functional memory model against the
//! cycle-accurate reference, at serving granularity.
//!
//! The fast model ([`fafnir_mem::FastFunctionalMemory`] plus the
//! fast-functional tree fold) changes *timing fidelity only*: per-batch
//! functional outputs are byte-identical by construction (pinned by tests
//! at the engine and property level). What it may move are the
//! serving-level metrics that depend on service times — tail latencies,
//! and, through dispatch backpressure, even batch composition and with it
//! DRAM read counts. This module measures exactly that drift: it sweeps a
//! seeded scenario matrix (arrival rates × batching windows × Zipf skews ×
//! fault plans), runs every scenario once per memory model with identical
//! seeds, and reports the per-metric relative divergence of the resulting
//! [`ServeReport`]s.
//!
//! [`ToleranceEnvelope::recorded`] holds the envelope measured on the
//! [`CalibrationMatrix::standard`] sweep; [`CalibrationReport::check`]
//! gates a report against an envelope and is run in CI (see
//! `tests/calibration.rs`). If a change moves the fast model outside the
//! recorded envelope, either the model regressed or the envelope needs
//! re-recording — both deserve a human look.

use fafnir_core::FafnirEngine;
use fafnir_mem::MemoryModelKind;
use fafnir_workloads::arrival::ArrivalProcess;
use fafnir_workloads::faults::FaultPlan;
use fafnir_workloads::query::{BatchGenerator, Popularity};

use crate::policy::BatchPolicy;
use crate::report::ServeReport;
use crate::sim::{simulate_resilient, ResilienceConfig, ServeConfig};
use crate::ServeError;

/// A fault-plan shape for one calibration scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// No faults: the transparent resilience configuration.
    None,
    /// The first `slowed` workers serve at `multiplier`× service time.
    Slow {
        /// Service-time multiplier of the degraded workers.
        multiplier: f64,
        /// How many workers are degraded.
        slowed: usize,
    },
    /// Seeded crash/restart churn on every worker.
    Crash {
        /// Mean time to failure in virtual ns.
        mttf_ns: f64,
        /// Mean time to repair in virtual ns.
        mttr_ns: f64,
    },
}

impl FaultSpec {
    /// Builds the concrete plan for `workers` replicas over `horizon_ns`.
    #[must_use]
    pub fn plan(&self, workers: usize, horizon_ns: f64, seed: u64) -> FaultPlan {
        match *self {
            FaultSpec::None => FaultPlan::none(workers),
            FaultSpec::Slow { multiplier, slowed } => {
                FaultPlan::slow_workers(workers, slowed.min(workers), multiplier)
            }
            FaultSpec::Crash { mttf_ns, mttr_ns } => {
                FaultPlan::crash_restart(workers, mttf_ns, mttr_ns, horizon_ns.max(1.0), seed)
            }
        }
    }

    /// Short display label.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            FaultSpec::None => "none".into(),
            FaultSpec::Slow { multiplier, slowed } => format!("slow:{multiplier}:{slowed}"),
            FaultSpec::Crash { mttf_ns, mttr_ns } => format!("crash:{mttf_ns:.0}:{mttr_ns:.0}"),
        }
    }
}

/// The scenario matrix one calibration run sweeps: the cross product of
/// rates, deadline-policy windows, popularity skews, and fault plans.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationMatrix {
    /// Poisson arrival rates in queries per second.
    pub rates_qps: Vec<f64>,
    /// Deadline-policy batching windows in virtual ns.
    pub windows_ns: Vec<f64>,
    /// Zipf exponents for query popularity (0.0 = uniform).
    pub skews: Vec<f64>,
    /// Fault plans layered on the runs.
    pub faults: Vec<FaultSpec>,
    /// Queries offered per scenario.
    pub queries: usize,
    /// Worker replicas per scenario.
    pub workers: usize,
    /// Embedding-table universe the generator draws from.
    pub universe: u64,
    /// Indices per query.
    pub query_len: usize,
    /// Deadline-policy batch cap.
    pub max_batch: usize,
    /// Seed shared by arrivals, traffic, and fault schedules.
    pub seed: u64,
}

impl CalibrationMatrix {
    /// The recorded sweep behind [`ToleranceEnvelope::recorded`]: 24
    /// scenarios spanning moderate and saturating load, short and long
    /// windows, uniform and skewed popularity, fault-free and degraded
    /// fleets.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            rates_qps: vec![1e6, 2e6],
            windows_ns: vec![1_000.0, 4_000.0, 16_000.0],
            skews: vec![0.8, 1.15],
            faults: vec![FaultSpec::None, FaultSpec::Slow { multiplier: 4.0, slowed: 1 }],
            queries: 256,
            workers: 4,
            universe: 2_000,
            query_len: 16,
            max_batch: 32,
            seed: 7,
        }
    }

    /// A four-scenario subset for quick checks (unit tests, smoke CI).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            rates_qps: vec![2e6],
            windows_ns: vec![4_000.0],
            skews: vec![1.15],
            faults: vec![
                FaultSpec::None,
                FaultSpec::Crash { mttf_ns: 40_000.0, mttr_ns: 20_000.0 },
            ],
            queries: 128,
            ..Self::standard()
        }
    }

    fn scenario_count(&self) -> usize {
        self.rates_qps.len() * self.windows_ns.len() * self.skews.len() * self.faults.len()
    }
}

/// One metric compared across the two models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDelta {
    /// Metric name (`p50_ns`, `p95_ns`, `p99_ns`, `dram_reads_per_query`,
    /// `goodput_qps`).
    pub name: &'static str,
    /// Value under the cycle-accurate model.
    pub cycle: f64,
    /// Value under the fast-functional model.
    pub fast: f64,
}

impl MetricDelta {
    /// Relative divergence `|fast − cycle| / cycle` (0 when both are 0).
    #[must_use]
    pub fn relative(&self) -> f64 {
        if self.cycle == 0.0 && self.fast == 0.0 {
            0.0
        } else {
            (self.fast - self.cycle).abs() / self.cycle.abs().max(f64::MIN_POSITIVE)
        }
    }
}

/// Divergence of one scenario across every compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDivergence {
    /// `rate … window … skew … faults …` display label.
    pub label: String,
    /// One delta per compared metric.
    pub metrics: Vec<MetricDelta>,
}

/// The full calibration result: one row per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Per-scenario divergences, in matrix sweep order.
    pub scenarios: Vec<ScenarioDivergence>,
}

/// Per-metric relative tolerances the calibration must stay within.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ToleranceEnvelope {
    /// Median query latency.
    pub p50: f64,
    /// 95th-percentile query latency.
    pub p95: f64,
    /// 99th-percentile query latency.
    pub p99: f64,
    /// DRAM vector reads per served query.
    pub dram_reads: f64,
    /// Served goodput.
    pub goodput: f64,
}

impl ToleranceEnvelope {
    /// The envelope recorded on [`CalibrationMatrix::standard`], roughly
    /// 2× the measured maxima (p50 1.64 %, p95 2.26 %, p99 2.89 %, reads
    /// 0.00 %, goodput 1.69 % — see EXPERIMENTS.md). The latency
    /// tolerances absorb the fast model's optimistic service times — it
    /// skips FR-FCFS queueing, output-port serialization and merge-unit
    /// stalls — which can also shift batch-formation timing and through
    /// it the read counts and goodput.
    #[must_use]
    pub fn recorded() -> Self {
        Self { p50: 0.05, p95: 0.05, p99: 0.06, dram_reads: 0.01, goodput: 0.05 }
    }

    fn bound(&self, metric: &str) -> f64 {
        match metric {
            "p50_ns" => self.p50,
            "p95_ns" => self.p95,
            "p99_ns" => self.p99,
            "dram_reads_per_query" => self.dram_reads,
            "goodput_qps" => self.goodput,
            _ => f64::INFINITY,
        }
    }
}

impl CalibrationReport {
    /// The largest relative divergence seen per metric, across scenarios.
    #[must_use]
    pub fn worst_per_metric(&self) -> Vec<(&'static str, f64)> {
        let mut worst: Vec<(&'static str, f64)> = Vec::new();
        for row in &self.scenarios {
            for delta in &row.metrics {
                match worst.iter_mut().find(|(name, _)| *name == delta.name) {
                    Some((_, value)) => *value = value.max(delta.relative()),
                    None => worst.push((delta.name, delta.relative())),
                }
            }
        }
        worst
    }

    /// Gates the report against `envelope`.
    ///
    /// # Errors
    ///
    /// Returns one message per metric × scenario exceeding its tolerance.
    pub fn check(&self, envelope: &ToleranceEnvelope) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        for row in &self.scenarios {
            for delta in &row.metrics {
                let bound = envelope.bound(delta.name);
                if delta.relative() > bound {
                    violations.push(format!(
                        "{}: {} diverges {:.1} % (cycle {:.3}, fast {:.3}, tolerance {:.0} %)",
                        row.label,
                        delta.name,
                        delta.relative() * 100.0,
                        delta.cycle,
                        delta.fast,
                        bound * 100.0
                    ));
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Renders the per-metric worst-case divergence as a fixed-width table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "calibration: {} scenarios, fast vs cycle divergence\n{:<22} {:>12}\n",
            self.scenarios.len(),
            "metric",
            "max |Δ| %"
        );
        for (name, worst) in self.worst_per_metric() {
            out.push_str(&format!("{name:<22} {:>11.2} %\n", worst * 100.0));
        }
        out
    }
}

/// Runs the matrix in both memory models and reports per-metric divergence.
///
/// Every scenario pair shares its seeds: the same arrival schedule, query
/// stream, and fault plan feed both models, so the divergence isolates the
/// timing model.
///
/// # Errors
///
/// Returns the first [`ServeError`] any simulation hits.
pub fn calibrate(matrix: &CalibrationMatrix) -> Result<CalibrationReport, ServeError> {
    let (cycle_engine, source) = crate::setup::paper_setup(MemoryModelKind::Cycle)?;
    let (fast_engine, _) = crate::setup::paper_setup(MemoryModelKind::Fast)?;

    let mut scenarios = Vec::with_capacity(matrix.scenario_count());
    for &rate in &matrix.rates_qps {
        for &window in &matrix.windows_ns {
            for &skew in &matrix.skews {
                for fault in &matrix.faults {
                    let config = ServeConfig {
                        arrivals: ArrivalProcess::Poisson { rate_qps: rate },
                        policy: BatchPolicy::Deadline {
                            max_wait_ns: window,
                            max_batch: matrix.max_batch,
                        },
                        workers: matrix.workers,
                        queries: matrix.queries,
                        seed: matrix.seed,
                        ..ServeConfig::default()
                    };
                    let horizon_ns = (matrix.queries as f64 / rate.max(1.0)) * 1e9 * 10.0;
                    let resilience = ResilienceConfig {
                        faults: fault.plan(matrix.workers, horizon_ns, matrix.seed),
                        ..ResilienceConfig::none(matrix.workers)
                    };
                    let popularity = if skew == 0.0 {
                        Popularity::Uniform
                    } else {
                        Popularity::Zipf { exponent: skew }
                    };
                    let report_for = |engine: &FafnirEngine| -> Result<ServeReport, ServeError> {
                        let mut traffic = BatchGenerator::new(
                            popularity,
                            matrix.universe,
                            matrix.query_len,
                            matrix.seed,
                        );
                        let outcome = simulate_resilient(
                            engine,
                            &source,
                            &mut traffic,
                            &config,
                            &resilience,
                        )?;
                        Ok(ServeReport::with_resilience(&config, &resilience, &outcome))
                    };
                    let cycle = report_for(&cycle_engine)?;
                    let fast = report_for(&fast_engine)?;
                    let delta = |name, c, f| MetricDelta { name, cycle: c, fast: f };
                    scenarios.push(ScenarioDivergence {
                        label: format!(
                            "rate {rate:.0} window {window:.0} skew {skew} faults {}",
                            fault.label()
                        ),
                        metrics: vec![
                            delta("p50_ns", cycle.latency.p50_ns, fast.latency.p50_ns),
                            delta("p95_ns", cycle.latency.p95_ns, fast.latency.p95_ns),
                            delta("p99_ns", cycle.latency.p99_ns, fast.latency.p99_ns),
                            delta(
                                "dram_reads_per_query",
                                cycle.dram_reads_per_query,
                                fast.dram_reads_per_query,
                            ),
                            delta("goodput_qps", cycle.goodput_qps, fast.goodput_qps),
                        ],
                    });
                }
            }
        }
    }
    Ok(CalibrationReport { scenarios })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_delta_relative_handles_zero_and_sign() {
        assert_eq!(MetricDelta { name: "x", cycle: 0.0, fast: 0.0 }.relative(), 0.0);
        let delta = MetricDelta { name: "x", cycle: 100.0, fast: 80.0 };
        assert!((delta.relative() - 0.2).abs() < 1e-12);
        let delta = MetricDelta { name: "x", cycle: 100.0, fast: 120.0 };
        assert!((delta.relative() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fault_specs_build_matching_plans() {
        assert_eq!(FaultSpec::None.plan(3, 1e9, 7), FaultPlan::none(3));
        assert_eq!(FaultSpec::None.label(), "none");
        assert_eq!(FaultSpec::Slow { multiplier: 4.0, slowed: 1 }.label(), "slow:4:1");
        let crash = FaultSpec::Crash { mttf_ns: 5e4, mttr_ns: 1e4 };
        assert_eq!(crash.plan(2, 1e6, 7).len(), 2);
        assert_eq!(crash.label(), "crash:50000:10000");
    }

    #[test]
    fn envelope_check_reports_violations_with_context() {
        let report = CalibrationReport {
            scenarios: vec![ScenarioDivergence {
                label: "toy".into(),
                metrics: vec![MetricDelta { name: "p50_ns", cycle: 100.0, fast: 10.0 }],
            }],
        };
        let tight = ToleranceEnvelope { p50: 0.05, ..ToleranceEnvelope::recorded() };
        let violations = report.check(&tight).unwrap_err();
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("p50_ns"), "{violations:?}");
        assert!(violations[0].contains("toy"));
        let loose = ToleranceEnvelope { p50: 1.0, ..ToleranceEnvelope::recorded() };
        assert!(report.check(&loose).is_ok());
    }

    #[test]
    fn smoke_matrix_stays_within_the_recorded_envelope() {
        let report = calibrate(&CalibrationMatrix::smoke()).unwrap();
        assert_eq!(report.scenarios.len(), 2);
        if let Err(violations) = report.check(&ToleranceEnvelope::recorded()) {
            panic!("fast model drifted out of envelope:\n{}", violations.join("\n"));
        }
        let table = report.render_table();
        for metric in ["p50_ns", "p99_ns", "dram_reads_per_query", "goodput_qps"] {
            assert!(table.contains(metric), "{table}");
        }
    }
}
