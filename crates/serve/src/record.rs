//! Per-query and per-batch accounting in virtual nanoseconds.

/// What happened to one submitted query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// Still queued (only observable mid-simulation; a finished run has
    /// none of these).
    Pending,
    /// Rejected by admission control at `shed_ns`.
    Shed {
        /// Virtual time the query was dropped.
        shed_ns: f64,
    },
    /// Served to completion.
    Served {
        /// Index of the formed batch (in formation order) that carried it.
        batch: usize,
        /// Virtual time the batcher closed that batch.
        formed_ns: f64,
        /// Virtual time a worker started serving that batch.
        dispatched_ns: f64,
        /// Virtual time this query's output reached the host.
        completion_ns: f64,
    },
}

/// The life of one query through the serving pipeline, in submission order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Virtual arrival time.
    pub arrival_ns: f64,
    /// Outcome (shed or served with its timeline).
    pub outcome: QueryOutcome,
}

impl QueryRecord {
    /// Time spent waiting in the batcher (arrival → batch closed), if
    /// served.
    #[must_use]
    pub fn batch_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { formed_ns, .. } => Some(formed_ns - self.arrival_ns),
            _ => None,
        }
    }

    /// Time the closed batch waited for a free worker, if served.
    #[must_use]
    pub fn dispatch_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { formed_ns, dispatched_ns, .. } => {
                Some(dispatched_ns - formed_ns)
            }
            _ => None,
        }
    }

    /// Queue wait: arrival → dispatch (batching plus worker wait), if
    /// served.
    #[must_use]
    pub fn queue_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { dispatched_ns, .. } => Some(dispatched_ns - self.arrival_ns),
            _ => None,
        }
    }

    /// Service time: dispatch → this query's output at the host, if served.
    #[must_use]
    pub fn service_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { dispatched_ns, completion_ns, .. } => {
                Some(completion_ns - dispatched_ns)
            }
            _ => None,
        }
    }

    /// End-to-end latency: arrival → output at the host, if served.
    #[must_use]
    pub fn latency_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { completion_ns, .. } => Some(completion_ns - self.arrival_ns),
            _ => None,
        }
    }
}

/// One formed batch's journey through a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Submission-order ids of the member queries.
    pub queries: Vec<usize>,
    /// Virtual time the batcher closed the batch.
    pub formed_ns: f64,
    /// Virtual time a worker started serving it.
    pub dispatched_ns: f64,
    /// Worker replica that served it.
    pub worker: usize,
    /// Engine service time (dispatch → last output).
    pub service_ns: f64,
    /// Index references in the batch (`Σ |query|`).
    pub references: u64,
    /// Deduplicated DRAM vector reads the batch issued.
    pub vectors_read: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_record_decomposes_latency() {
        let record = QueryRecord {
            arrival_ns: 100.0,
            outcome: QueryOutcome::Served {
                batch: 0,
                formed_ns: 150.0,
                dispatched_ns: 170.0,
                completion_ns: 300.0,
            },
        };
        assert_eq!(record.batch_wait_ns(), Some(50.0));
        assert_eq!(record.dispatch_wait_ns(), Some(20.0));
        assert_eq!(record.queue_wait_ns(), Some(70.0));
        assert_eq!(record.service_ns(), Some(130.0));
        assert_eq!(record.latency_ns(), Some(200.0));
    }

    #[test]
    fn shed_and_pending_records_have_no_latency() {
        for outcome in [QueryOutcome::Pending, QueryOutcome::Shed { shed_ns: 5.0 }] {
            let record = QueryRecord { arrival_ns: 1.0, outcome };
            assert_eq!(record.latency_ns(), None);
            assert_eq!(record.queue_wait_ns(), None);
            assert_eq!(record.service_ns(), None);
        }
    }
}
