//! Per-query, per-batch, and per-attempt accounting in virtual nanoseconds.

/// What happened to one submitted query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryOutcome {
    /// Still queued (only observable mid-simulation; a finished run has
    /// none of these).
    Pending,
    /// Rejected by admission control at `shed_ns` (queue overflow, or the
    /// shed-escalation path when every worker is permanently down).
    Shed {
        /// Virtual time the query was dropped.
        shed_ns: f64,
    },
    /// Dispatched but never completed: every service attempt crashed or
    /// timed out and the retry budget ran out.
    Failed {
        /// Virtual time the last attempt gave up.
        failed_ns: f64,
    },
    /// Served to completion.
    Served {
        /// Index of the formed batch (in formation order) that carried it.
        batch: usize,
        /// Virtual time the batcher closed that batch.
        formed_ns: f64,
        /// Virtual time the *winning* service attempt started (with retries
        /// and hedging this is the attempt whose output reached the host).
        dispatched_ns: f64,
        /// Virtual time this query's output reached the host.
        completion_ns: f64,
    },
}

/// The life of one query through the serving pipeline, in submission order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryRecord {
    /// Virtual arrival time.
    pub arrival_ns: f64,
    /// Outcome (shed, failed, or served with its timeline).
    pub outcome: QueryOutcome,
}

impl QueryRecord {
    /// Time spent waiting in the batcher (arrival → batch closed), if
    /// served.
    #[must_use]
    pub fn batch_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { formed_ns, .. } => Some(formed_ns - self.arrival_ns),
            _ => None,
        }
    }

    /// Time the closed batch waited for its winning dispatch, if served
    /// (worker wait plus any failed attempts and retry backoff).
    #[must_use]
    pub fn dispatch_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { formed_ns, dispatched_ns, .. } => {
                Some(dispatched_ns - formed_ns)
            }
            _ => None,
        }
    }

    /// Queue wait: arrival → winning dispatch (batching plus worker wait
    /// plus retries), if served.
    #[must_use]
    pub fn queue_wait_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { dispatched_ns, .. } => Some(dispatched_ns - self.arrival_ns),
            _ => None,
        }
    }

    /// Service time: winning dispatch → this query's output at the host, if
    /// served.
    #[must_use]
    pub fn service_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { dispatched_ns, completion_ns, .. } => {
                Some(completion_ns - dispatched_ns)
            }
            _ => None,
        }
    }

    /// End-to-end latency: arrival → output at the host, if served.
    #[must_use]
    pub fn latency_ns(&self) -> Option<f64> {
        match self.outcome {
            QueryOutcome::Served { completion_ns, .. } => Some(completion_ns - self.arrival_ns),
            _ => None,
        }
    }
}

/// One formed batch's journey through the worker pool.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRecord {
    /// Submission-order ids of the member queries.
    pub queries: Vec<usize>,
    /// Virtual time the batcher closed the batch.
    pub formed_ns: f64,
    /// Virtual time the winning (or, for a failed batch, the first) service
    /// attempt started.
    pub dispatched_ns: f64,
    /// Worker replica whose attempt won (for a failed batch: the last
    /// attempt's worker).
    pub worker: usize,
    /// Winning attempt's engine service time, slowdown included (0 for a
    /// failed batch).
    pub service_ns: f64,
    /// Index references in the batch (`Σ |query|`), counted once.
    pub references: u64,
    /// Deduplicated DRAM vector reads summed over *every started attempt* —
    /// retries and hedges re-issue the batch's reads, which is exactly the
    /// extra-DRAM cost of resilience.
    pub vectors_read: u64,
    /// Service attempts started (first dispatch, retries, and the hedge).
    pub attempts: u32,
    /// Whether a hedge attempt was launched.
    pub hedged: bool,
    /// Whether the hedge attempt delivered the winning completion.
    pub hedge_won: bool,
    /// Whether the batch exhausted its retry budget and failed.
    pub failed: bool,
}

/// How one service attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptResult {
    /// Delivered the batch's outputs to the host.
    Won,
    /// Cancelled because the other (primary/hedge) attempt won first.
    Cancelled,
    /// The worker crashed mid-service; the work was lost.
    Crashed,
    /// The dispatcher gave up at the per-batch timeout; the worker kept
    /// crunching to its natural finish (wasted work).
    TimedOut,
    /// Abandoned by shed escalation (permanent total outage).
    Abandoned,
}

/// One service attempt of one formed batch on one worker. The busy span
/// `[start_ns, busy_until_ns]` is what utilization and per-worker busy
/// fractions are computed from — it includes wasted work (timed-out
/// attempts crunch to their natural finish; cancelled hedges stop at the
/// winner's completion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptRecord {
    /// Index of the formed batch (matches [`BatchRecord`] order).
    pub batch: usize,
    /// Worker replica the attempt ran on.
    pub worker: usize,
    /// Whether this was the hedge (duplicate) attempt.
    pub hedge: bool,
    /// Virtual time the attempt started.
    pub start_ns: f64,
    /// Virtual time the worker stopped working on it.
    pub busy_until_ns: f64,
    /// How the attempt ended.
    pub result: AttemptResult,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn served_record_decomposes_latency() {
        let record = QueryRecord {
            arrival_ns: 100.0,
            outcome: QueryOutcome::Served {
                batch: 0,
                formed_ns: 150.0,
                dispatched_ns: 170.0,
                completion_ns: 300.0,
            },
        };
        assert_eq!(record.batch_wait_ns(), Some(50.0));
        assert_eq!(record.dispatch_wait_ns(), Some(20.0));
        assert_eq!(record.queue_wait_ns(), Some(70.0));
        assert_eq!(record.service_ns(), Some(130.0));
        assert_eq!(record.latency_ns(), Some(200.0));
    }

    #[test]
    fn shed_failed_and_pending_records_have_no_latency() {
        for outcome in [
            QueryOutcome::Pending,
            QueryOutcome::Shed { shed_ns: 5.0 },
            QueryOutcome::Failed { failed_ns: 9.0 },
        ] {
            let record = QueryRecord { arrival_ns: 1.0, outcome };
            assert_eq!(record.latency_ns(), None);
            assert_eq!(record.queue_wait_ns(), None);
            assert_eq!(record.service_ns(), None);
        }
    }
}
