//! The sharded multi-tree engine.
//!
//! [`ClusterEngine`] owns one independent FAFNIR tree per shard and answers
//! whole batches through [`LookupService`], so the virtual-time serving
//! simulation (faults, retries, hedging) drives a cluster exactly like a
//! single engine. A lookup proceeds in three stages:
//!
//! 1. **route** — [`crate::router::route`] splits every query into
//!    per-shard sub-queries over owned indices;
//! 2. **shard lookups** — each touched shard runs its sub-batch on its own
//!    tree (timing, DRAM counters, traffic all measured per shard; shards
//!    operate concurrently, so batch latency is the slowest shard);
//! 3. **merge** — queries split across shards combine their per-shard
//!    partial accumulators through the [`ReduceOperator`]
//!    (`combine_into`), finalized once.
//!
//! ## Merge semantics
//!
//! A query resolved by a single shard takes that shard's tree output
//! verbatim — the tree's per-query fold depends only on the query's own
//! indices and the placement, so the bits equal a one-tree run of the same
//! query (pinned by the parity property test). A *split* query instead
//! folds each shard's owned indices in ascending index order into an
//! unfinalized partial (`lift` + `combine_into` — per-shard finalization
//! would double-apply e.g. the Mean division), combines partials in
//! ascending shard order, and finalizes once. For exactly associative
//! operators (max/min/argmax/top-k) this is bit-identical to the one-tree
//! result; for float sum/mean the grouping changes rounding, so split
//! queries are `ReduceOperator`-merged rather than bit-equal — the
//! documented cluster contract.

use std::sync::{Arc, Mutex};

use fafnir_core::{
    combine_partials, Batch, EmbeddingSource, FafnirConfig, FafnirEngine, FafnirError,
    GatherEngine, LookupResult, LookupService, QueryId, ReduceOperator, ShardPlan,
};
use fafnir_mem::{MemoryConfig, MemoryModelKind};
use fafnir_serve::{worker_setup, ServeError};

use crate::report::ClusterStats;
use crate::router::{route, RouterPolicy};

/// A cluster of independent FAFNIR trees behind a placement-aware router.
#[derive(Debug)]
pub struct ClusterEngine {
    engines: Vec<FafnirEngine>,
    config: FafnirConfig,
    operator: Arc<dyn ReduceOperator>,
    plan: ShardPlan,
    policy: RouterPolicy,
    stats: Mutex<ClusterStats>,
}

impl ClusterEngine {
    /// Builds one engine per shard of `plan`, each with a private memory
    /// system configured by `mem`.
    ///
    /// # Errors
    ///
    /// Returns [`FafnirError::InvalidConfig`] when the per-shard engine
    /// rejects the configuration.
    pub fn new(
        config: FafnirConfig,
        mem: MemoryConfig,
        plan: ShardPlan,
        policy: RouterPolicy,
    ) -> Result<Self, FafnirError> {
        let engines = (0..plan.shards())
            .map(|_| FafnirEngine::new(config, mem))
            .collect::<Result<Vec<_>, _>>()?;
        let stats = Mutex::new(ClusterStats::new(plan.shards()));
        Ok(Self { engines, config, operator: config.op.operator(), plan, policy, stats })
    }

    /// The shard plan.
    #[must_use]
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The replicated-row tie-break policy.
    #[must_use]
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.engines.len()
    }

    /// The per-shard engine configuration.
    #[must_use]
    pub fn config(&self) -> &FafnirConfig {
        &self.config
    }

    /// A snapshot of the accumulated cluster statistics.
    ///
    /// Merge-latency samples are returned sorted: every counter in the
    /// snapshot is then invariant under the order concurrent scenario
    /// threads interleaved their batches, keeping cluster reports
    /// byte-stable.
    ///
    /// # Panics
    ///
    /// Panics if a previous lookup panicked while holding the stats lock.
    #[must_use]
    pub fn stats(&self) -> ClusterStats {
        let mut snapshot = self.stats.lock().expect("stats lock poisoned").clone();
        snapshot.merge_ns.sort_by(f64::total_cmp);
        snapshot
    }

    /// Clears the accumulated statistics (e.g. between bench scenarios).
    ///
    /// # Panics
    ///
    /// Panics if a previous lookup panicked while holding the stats lock.
    pub fn reset_stats(&self) {
        *self.stats.lock().expect("stats lock poisoned") = ClusterStats::new(self.shards());
    }

    /// Nanoseconds to move one partial accumulator between shards and
    /// combine it at the merge point: one link transfer of the accumulator
    /// plus one PE-grade reduce.
    fn merge_step_ns(&self, acc_dim: usize) -> f64 {
        let acc_bytes = acc_dim * std::mem::size_of::<f32>();
        let transfer_cycles = acc_bytes.div_ceil(self.config.link_bytes_per_cycle) as f64;
        transfer_cycles * self.config.pe_timing.cycle_ns()
            + self.config.pe_timing.reduce_latency_ns()
    }
}

/// [`ClusterEngine`] plus its matching [`fafnir_core::StripedSource`],
/// built through the shared serving worker constructor
/// ([`fafnir_serve::worker_setup`]) once per shard — the cluster path
/// reuses the exact setup the single-engine serving paths use.
///
/// # Errors
///
/// Returns [`ServeError::InvalidConfig`] when the engine rejects the
/// configuration.
pub fn cluster_setup(
    config: FafnirConfig,
    model: MemoryModelKind,
    plan: ShardPlan,
    policy: RouterPolicy,
) -> Result<(ClusterEngine, fafnir_core::StripedSource), ServeError> {
    let mut engines = Vec::with_capacity(plan.shards());
    let mut source = None;
    for _ in 0..plan.shards() {
        let (engine, shard_source) = worker_setup(config, model)?;
        engines.push(engine);
        source = Some(shard_source);
    }
    let source = source.expect("plans have at least one shard");
    let stats = Mutex::new(ClusterStats::new(plan.shards()));
    let cluster =
        ClusterEngine { engines, config, operator: config.op.operator(), plan, policy, stats };
    Ok((cluster, source))
}

impl LookupService for ClusterEngine {
    fn name(&self) -> &'static str {
        "fafnir-cluster"
    }

    fn lookup<S: EmbeddingSource>(
        &self,
        batch: &Batch,
        source: &S,
    ) -> Result<LookupResult, FafnirError> {
        if batch.is_empty() {
            return Err(FafnirError::InvalidBatch("batch has no queries".into()));
        }
        let routed = route(batch, &self.plan, self.policy);
        let dim = source.vector_dim();
        let acc_dim = self.operator.acc_dim(dim);
        let merge_step_ns = self.merge_step_ns(acc_dim);
        let acc_bytes = (acc_dim * std::mem::size_of::<f32>()) as u64;

        // Stage 2: every touched shard runs its sub-batch on its own tree.
        // `shard_outputs[p]`/`shard_times[p]` collect, per global query
        // position, the (shard, value/time) pairs in ascending shard order.
        let mut shard_outputs: Vec<Vec<(usize, Vec<f32>)>> = vec![Vec::new(); batch.len()];
        let mut shard_times: Vec<f64> = vec![0.0; batch.len()];
        let mut merged: Option<LookupResult> = None;
        let mut per_shard_vectors = vec![0u64; self.shards()];
        for (shard, sub_queries) in routed.per_shard.iter().enumerate() {
            if sub_queries.is_empty() {
                continue;
            }
            let sub_batch = Batch::from_index_sets(sub_queries.iter().map(|sq| sq.indices.clone()));
            let result = GatherEngine::lookup(&self.engines[shard], &sub_batch, source)?;
            per_shard_vectors[shard] = result.traffic.vectors_read;
            for &(QueryId(local), ref value) in &result.outputs {
                let position = sub_queries[local as usize].position;
                // Split queries recompute from partials; only single-shard
                // queries consume the tree output, so skip the other clones.
                if routed.touched[position].len() == 1 {
                    shard_outputs[position].push((shard, value.clone()));
                }
            }
            for &(QueryId(local), completion) in &result.per_query_ns {
                let position = sub_queries[local as usize].position;
                shard_times[position] = shard_times[position].max(completion);
            }
            merge_shard(&mut merged, result);
        }
        let mut aggregate = merged
            .ok_or_else(|| FafnirError::InvalidBatch("batch references no indices".into()))?;

        // Stage 3: assemble outputs. Single-shard queries take the tree
        // output verbatim; split queries fold their own partials (see the
        // module docs for why the shard output cannot be reused there).
        let mut outputs = Vec::with_capacity(batch.len());
        let mut per_query_ns = Vec::with_capacity(batch.len());
        let mut batch_merge_ns = 0.0f64;
        let mut split_queries = 0u64;
        let mut cross_shard_bytes = 0u64;
        for (position, query) in batch.queries().iter().enumerate() {
            let touched = &routed.touched[position];
            let value = match touched.len() {
                0 => continue,
                1 => {
                    let mut collected = std::mem::take(&mut shard_outputs[position]);
                    match collected.pop() {
                        Some((_, value)) => value,
                        None => continue, // incomplete on its shard
                    }
                }
                _ => {
                    split_queries += 1;
                    cross_shard_bytes += (touched.len() as u64 - 1) * acc_bytes;
                    let partials = touched.iter().map(|&shard| {
                        partial_fold(
                            self.operator.as_ref(),
                            routed.per_shard[shard]
                                .iter()
                                .find(|sq| sq.position == position)
                                .expect("touched shards hold a sub-query"),
                            source,
                        )
                    });
                    match combine_partials(self.operator.as_ref(), partials) {
                        Some(value) => value,
                        None => continue,
                    }
                }
            };
            let merge_ns = merge_step_ns * touched.len().saturating_sub(1) as f64;
            batch_merge_ns = batch_merge_ns.max(merge_ns);
            let completion = shard_times[position] + merge_ns;
            let id = query.id;
            outputs.push((id, value));
            per_query_ns.push((id, completion));
        }
        outputs.sort_by_key(|&(id, _)| id);
        per_query_ns.sort_by_key(|&(id, _)| id);

        // Cluster-level latency: shards run concurrently, so the batch ends
        // at the slowest shard plus any merge tail it feeds.
        let shard_total = aggregate.latency.total_ns;
        let query_tail = per_query_ns.iter().map(|&(_, t)| t).fold(0.0f64, f64::max);
        aggregate.latency.total_ns = shard_total.max(query_tail);
        aggregate.latency.compute_tail_ns =
            (aggregate.latency.total_ns - aggregate.latency.memory_ns).max(0.0);
        aggregate.tree.completion_ns = aggregate.latency.total_ns;
        aggregate.traffic.total_references = batch.total_references() as u64;
        aggregate.traffic.bytes_to_host = outputs
            .iter()
            .map(|(_, value)| (value.len() * std::mem::size_of::<f32>()) as u64)
            .sum();
        aggregate.outputs = outputs;
        aggregate.per_query_ns = per_query_ns;

        let mut stats = self.stats.lock().expect("stats lock poisoned");
        stats.batches += 1;
        stats.queries += batch.len() as u64;
        stats.split_queries += split_queries;
        stats.replicated_routes += routed.replicated_routes;
        stats.cross_shard_bytes += cross_shard_bytes;
        for (shard, sub_queries) in routed.per_shard.iter().enumerate() {
            stats.per_shard_queries[shard] += sub_queries.len() as u64;
            stats.per_shard_vectors_read[shard] += per_shard_vectors[shard];
        }
        stats.merge_ns.push(batch_merge_ns);
        drop(stats);

        Ok(aggregate)
    }
}

/// One shard's unfinalized partial: `lift` the first owned vector, then
/// `combine_into` the rest in ascending index order (the order
/// [`fafnir_core::IndexSet`] iterates).
fn partial_fold<S: EmbeddingSource>(
    operator: &dyn ReduceOperator,
    sub_query: &crate::router::SubQuery,
    source: &S,
) -> Vec<f32> {
    let mut indices = sub_query.indices.iter();
    let first = indices.next().expect("sub-queries are non-empty");
    let mut acc = operator.lift(first, &source.shared_value_of(first));
    for index in indices {
        operator.combine_into(&mut acc, &operator.lift(index, &source.shared_value_of(index)));
    }
    acc
}

/// Overlays a concurrent shard result onto the batch aggregate: latencies
/// max (shards run in parallel), counters add. Outputs and per-query times
/// are assembled separately, so only the scalar fields matter here.
fn merge_shard(into: &mut Option<LookupResult>, sub: LookupResult) {
    let Some(aggregate) = into else {
        *into = Some(sub);
        return;
    };
    aggregate.latency.total_ns = aggregate.latency.total_ns.max(sub.latency.total_ns);
    aggregate.latency.memory_ns = aggregate.latency.memory_ns.max(sub.latency.memory_ns);
    aggregate.latency.compute_tail_ns =
        (aggregate.latency.total_ns - aggregate.latency.memory_ns).max(0.0);
    aggregate.memory.merge(&sub.memory);
    aggregate.tree.ops.merge(&sub.tree.ops);
    aggregate.tree.levels = aggregate.tree.levels.max(sub.tree.levels);
    aggregate.tree.pes += sub.tree.pes;
    aggregate.tree.max_buffer_items =
        aggregate.tree.max_buffer_items.max(sub.tree.max_buffer_items);
    aggregate.tree.incomplete_outputs += sub.tree.incomplete_outputs;
    if aggregate.tree.per_level_outputs.len() < sub.tree.per_level_outputs.len() {
        aggregate.tree.per_level_outputs.resize(sub.tree.per_level_outputs.len(), 0);
    }
    for (level, count) in sub.tree.per_level_outputs.iter().enumerate() {
        aggregate.tree.per_level_outputs[level] += count;
    }
    aggregate.traffic.total_references += sub.traffic.total_references;
    aggregate.traffic.vectors_read += sub.traffic.vectors_read;
    aggregate.traffic.bytes_from_dram += sub.traffic.bytes_from_dram;
    aggregate.traffic.bytes_to_host += sub.traffic.bytes_to_host;
}
