//! Cluster-level statistics and the serving-integrated report.

use fafnir_serve::{LatencyStats, ServeReport};

use crate::engine::ClusterEngine;

/// Counters a [`ClusterEngine`] accumulates across lookups.
///
/// Every field is either an order-independent sum or (for `merge_ns`)
/// sorted at snapshot time, so concurrent scenario threads sharing one
/// engine cannot perturb a report.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Batches answered.
    pub batches: u64,
    /// Queries across all batches (including empty ones the engine omits).
    pub queries: u64,
    /// Queries whose indices spanned more than one shard.
    pub split_queries: u64,
    /// Replicated-row placements the router's policy decided.
    pub replicated_routes: u64,
    /// Sub-queries routed to each shard.
    pub per_shard_queries: Vec<u64>,
    /// DRAM vector reads each shard actually issued (post-dedup) — the
    /// load signal behind the imbalance factor.
    pub per_shard_vectors_read: Vec<u64>,
    /// Partial-accumulator bytes moved between shards by the merge stage.
    pub cross_shard_bytes: u64,
    /// Per-batch merge-stage latency samples (0 for batches with no split
    /// query); sorted in snapshots.
    pub merge_ns: Vec<f64>,
}

impl ClusterStats {
    /// Zeroed counters for `shards` shards.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            batches: 0,
            queries: 0,
            split_queries: 0,
            replicated_routes: 0,
            per_shard_queries: vec![0; shards],
            per_shard_vectors_read: vec![0; shards],
            cross_shard_bytes: 0,
            merge_ns: Vec::new(),
        }
    }

    /// Shard-imbalance factor: the busiest shard's vector reads over the
    /// per-shard mean. 1.0 is perfect balance; `shards` is total skew.
    /// Returns 1.0 when no reads were issued.
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        let total: u64 = self.per_shard_vectors_read.iter().sum();
        if total == 0 || self.per_shard_vectors_read.is_empty() {
            return 1.0;
        }
        let max = *self.per_shard_vectors_read.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.per_shard_vectors_read.len() as f64;
        max / mean
    }

    /// Fraction of queries that spanned more than one shard.
    #[must_use]
    pub fn split_fraction(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.split_queries as f64 / self.queries as f64
        }
    }
}

/// The cluster-level serving report: routing and merge counters joined
/// with the virtual-time serving simulation's tail latencies.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Shard count.
    pub shards: usize,
    /// Sharding strategy name (`tablewise`, `rowhash`, `rowrange`).
    pub strategy: String,
    /// Replicated-row router policy name.
    pub policy: String,
    /// Rows in the frozen replica set.
    pub replicated_rows: usize,
    /// Accumulated routing/merge counters.
    pub stats: ClusterStats,
    /// Shard-imbalance factor (max/mean vector reads).
    pub imbalance: f64,
    /// Merge-stage latency summary over per-batch samples.
    pub merge: LatencyStats,
    /// Queries served by the simulation.
    pub served: usize,
    /// Queries shed by admission control.
    pub shed: usize,
    /// Serving throughput in queries per second.
    pub throughput_qps: f64,
    /// End-to-end serving latency summary (p50/p95/p99/p99.9).
    pub latency: LatencyStats,
}

impl ClusterReport {
    /// Joins a cluster engine's counter snapshot with a serving report.
    #[must_use]
    pub fn new(engine: &ClusterEngine, serve: &ServeReport) -> Self {
        let stats = engine.stats();
        Self {
            shards: engine.shards(),
            strategy: engine.plan().strategy_name().to_string(),
            policy: engine.policy().name().to_string(),
            replicated_rows: engine.plan().replicated().len(),
            imbalance: stats.imbalance(),
            merge: LatencyStats::of(&stats.merge_ns),
            served: serve.served,
            shed: serve.shed,
            throughput_qps: serve.throughput_qps,
            latency: serve.latency,
            stats,
        }
    }

    /// Byte-stable JSON rendering (fixed key order, fixed float widths).
    #[must_use]
    pub fn to_json(&self) -> String {
        let counts = |values: &[u64]| {
            let cells: Vec<String> = values.iter().map(u64::to_string).collect();
            format!("[{}]", cells.join(", "))
        };
        format!(
            "{{\n  \"shards\": {},\n  \"strategy\": \"{}\",\n  \"policy\": \"{}\",\n  \
             \"replicated_rows\": {},\n  \"batches\": {},\n  \"queries\": {},\n  \
             \"split_queries\": {},\n  \"split_fraction\": {:.6},\n  \
             \"replicated_routes\": {},\n  \"per_shard_queries\": {},\n  \
             \"per_shard_vectors_read\": {},\n  \"imbalance\": {:.6},\n  \
             \"cross_shard_bytes\": {},\n  \"merge_ns\": {},\n  \"served\": {},\n  \
             \"shed\": {},\n  \"throughput_qps\": {:.3},\n  \"latency\": {}\n}}",
            self.shards,
            self.strategy,
            self.policy,
            self.replicated_rows,
            self.stats.batches,
            self.stats.queries,
            self.stats.split_queries,
            self.stats.split_fraction(),
            self.stats.replicated_routes,
            counts(&self.stats.per_shard_queries),
            counts(&self.stats.per_shard_vectors_read),
            self.imbalance,
            self.stats.cross_shard_bytes,
            self.merge.to_json(),
            self.served,
            self.shed,
            self.throughput_qps,
            self.latency.to_json(),
        )
    }

    /// Human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut row = |label: &str, value: String| {
            out.push_str(&format!("{label:<26} {value}\n"));
        };
        row("shards", self.shards.to_string());
        row("strategy", self.strategy.clone());
        row("router policy", self.policy.clone());
        row("replicated rows", self.replicated_rows.to_string());
        row("batches", self.stats.batches.to_string());
        row("queries", self.stats.queries.to_string());
        row(
            "split queries",
            format!("{} ({:.2} %)", self.stats.split_queries, self.stats.split_fraction() * 100.0),
        );
        row("replicated routes", self.stats.replicated_routes.to_string());
        row("per-shard queries", format!("{:?}", self.stats.per_shard_queries));
        row("per-shard vector reads", format!("{:?}", self.stats.per_shard_vectors_read));
        row("shard imbalance", format!("{:.3}", self.imbalance));
        row("cross-shard traffic", format!("{} B", self.stats.cross_shard_bytes));
        row("merge p50 / max", format!("{:.1} / {:.1} ns", self.merge.p50_ns, self.merge.max_ns));
        row("served / shed", format!("{} / {}", self.served, self.shed));
        row("throughput", format!("{:.0} q/s", self.throughput_qps));
        row("latency p50", format!("{:.1} ns", self.latency.p50_ns));
        row("latency p95", format!("{:.1} ns", self.latency.p95_ns));
        row("latency p99", format!("{:.1} ns", self.latency.p99_ns));
        row("latency p99.9", format!("{:.1} ns", self.latency.p999_ns));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imbalance_is_one_for_perfect_balance_and_idle_clusters() {
        let mut stats = ClusterStats::new(4);
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
        stats.per_shard_vectors_read = vec![10, 10, 10, 10];
        assert!((stats.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_hits_shard_count_under_total_skew() {
        let mut stats = ClusterStats::new(4);
        stats.per_shard_vectors_read = vec![40, 0, 0, 0];
        assert!((stats.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn split_fraction_handles_zero_queries() {
        let stats = ClusterStats::new(2);
        assert_eq!(stats.split_fraction(), 0.0);
    }
}
