//! Placement-aware query routing.
//!
//! The router splits each query of a batch into per-shard sub-queries
//! touching only indices the shard owns. For rows that exist on exactly one
//! shard there is nothing to decide; for *replicated* rows it runs a
//! CODA-style marginal-cost model: every owner charges the same DRAM read
//! (one vector), so the only cost difference is data movement — routing the
//! row to a shard the query already touches adds nothing, while opening a
//! new shard adds one partial-accumulator transfer to the merge stage.
//! Shards already touched by the query therefore always win; ties among
//! equally-cheap owners fall to the [`RouterPolicy`].
//!
//! Routing is a pure function of `(batch, plan, policy)`: the round-robin
//! cursor and the load counters reset per batch, so the same batch routes
//! identically no matter what ran before it — the property the byte-stable
//! serving reports and the retry/hedge replay machinery rely on.

use fafnir_core::{Batch, IndexSet, ShardPlan, VectorIndex};

/// Tie-break policy among equally-cheap owners of a replicated row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterPolicy {
    /// Rotate through the candidates; spreads hot rows evenly by count.
    #[default]
    RoundRobin,
    /// Send to the candidate with the fewest vector reads routed so far in
    /// this batch; adapts to skew within the batch.
    LeastLoaded,
}

impl RouterPolicy {
    /// CLI-facing name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "roundrobin",
            Self::LeastLoaded => "leastloaded",
        }
    }
}

impl std::str::FromStr for RouterPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "roundrobin" => Ok(Self::RoundRobin),
            "leastloaded" => Ok(Self::LeastLoaded),
            other => Err(format!("unknown router policy '{other}' (roundrobin|leastloaded)")),
        }
    }
}

/// One query's slice of work on one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubQuery {
    /// Position of the originating query in the routed batch.
    pub position: usize,
    /// The indices of that query this shard owns (or was routed).
    pub indices: IndexSet,
}

/// A batch split into per-shard sub-queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedBatch {
    /// Sub-queries per shard, in originating-query order.
    pub per_shard: Vec<Vec<SubQuery>>,
    /// For every query position, the shards it touches, ascending.
    pub touched: Vec<Vec<usize>>,
    /// Replicated-row placements the policy decided (candidates > 1).
    pub replicated_routes: u64,
}

/// Routes `batch` over `plan`, breaking replicated-row ties with `policy`.
#[must_use]
pub fn route(batch: &Batch, plan: &ShardPlan, policy: RouterPolicy) -> RoutedBatch {
    let shards = plan.shards();
    let mut per_shard: Vec<Vec<SubQuery>> = vec![Vec::new(); shards];
    let mut touched: Vec<Vec<usize>> = Vec::with_capacity(batch.len());
    // Estimated vector reads routed to each shard within this batch: the
    // load signal the least-loaded policy balances on.
    let mut load = vec![0u64; shards];
    let mut cursor = 0usize;
    let mut replicated_routes = 0u64;

    for (position, query) in batch.queries().iter().enumerate() {
        let mut buckets: Vec<Vec<VectorIndex>> = vec![Vec::new(); shards];
        // Pinned rows first: they fix the query's touched set, which the
        // cost model then tries not to grow.
        let mut pending: Vec<VectorIndex> = Vec::new();
        for index in query.indices.iter() {
            if plan.is_replicated(index) {
                pending.push(index);
            } else {
                buckets[plan.home_shard(index)].push(index);
            }
        }
        for index in pending {
            let owners = plan.owners(index);
            let choice = if owners.len() == 1 {
                owners[0]
            } else {
                replicated_routes += 1;
                // Marginal cost: a shard this query already touches adds no
                // cross-shard transfer; any new shard adds one. Owners at
                // minimal cost go to the policy tie-break.
                let cheap: Vec<usize> = {
                    let already: Vec<usize> =
                        owners.iter().copied().filter(|&s| !buckets[s].is_empty()).collect();
                    if already.is_empty() {
                        owners
                    } else {
                        already
                    }
                };
                match policy {
                    RouterPolicy::RoundRobin => {
                        let mut sorted = cheap;
                        sorted.sort_unstable();
                        let pick = sorted[cursor % sorted.len()];
                        cursor += 1;
                        pick
                    }
                    RouterPolicy::LeastLoaded => cheap
                        .iter()
                        .copied()
                        .min_by_key(|&s| (load[s], s))
                        .expect("owners are never empty"),
                }
            };
            buckets[choice].push(index);
        }
        let mut shards_touched = Vec::new();
        for (shard, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            load[shard] += bucket.len() as u64;
            shards_touched.push(shard);
            per_shard[shard]
                .push(SubQuery { position, indices: IndexSet::from_iter_dedup(bucket) });
        }
        touched.push(shards_touched);
    }

    RoutedBatch { per_shard, touched, replicated_routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fafnir_core::{indexset, ShardStrategy};

    fn range_plan(shards: usize, universe: u32) -> ShardPlan {
        ShardPlan::new(shards, ShardStrategy::RowRange { universe })
    }

    #[test]
    fn unreplicated_rows_go_home_and_touched_is_ascending() {
        let plan = range_plan(4, 100); // spans of 25
        let batch = Batch::from_index_sets([indexset![1, 26, 99], indexset![30, 31]]);
        let routed = route(&batch, &plan, RouterPolicy::RoundRobin);
        assert_eq!(routed.touched, vec![vec![0, 1, 3], vec![1]]);
        assert_eq!(routed.per_shard[1].len(), 2);
        assert_eq!(routed.per_shard[2].len(), 0);
        assert_eq!(routed.replicated_routes, 0);
    }

    #[test]
    fn replicated_rows_prefer_shards_the_query_already_touches() {
        let plan = range_plan(4, 100).with_replicated([VectorIndex(0)]);
        // Query touches shard 2 via index 60; the replicated index 0 should
        // join it rather than open shard 0 — under either policy.
        for policy in [RouterPolicy::RoundRobin, RouterPolicy::LeastLoaded] {
            let batch = Batch::from_index_sets([indexset![0, 60]]);
            let routed = route(&batch, &plan, policy);
            assert_eq!(routed.touched, vec![vec![2]], "policy {policy:?}");
            assert_eq!(routed.replicated_routes, 1);
        }
    }

    #[test]
    fn round_robin_rotates_replicated_singletons_across_shards() {
        let plan = range_plan(4, 100).with_replicated([VectorIndex(0)]);
        // Four queries of just the hot row: nothing pins them, so the
        // cursor spreads them over all four shards.
        let batch =
            Batch::from_index_sets([indexset![0], indexset![0], indexset![0], indexset![0]]);
        let routed = route(&batch, &plan, RouterPolicy::RoundRobin);
        let counts: Vec<usize> = routed.per_shard.iter().map(Vec::len).collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn least_loaded_steers_hot_rows_away_from_busy_shards() {
        let plan = range_plan(2, 100).with_replicated([VectorIndex(0)]);
        // Query 0 loads shard 0 with three reads; the following bare hot-row
        // queries should all land on shard 1 (load 0 < 3).
        let batch = Batch::from_index_sets([indexset![1, 2, 3], indexset![0], indexset![0]]);
        let routed = route(&batch, &plan, RouterPolicy::LeastLoaded);
        assert_eq!(routed.touched[1], vec![1]);
        assert_eq!(routed.touched[2], vec![1]);
    }

    #[test]
    fn routing_is_a_pure_function_of_the_batch() {
        let plan = range_plan(3, 90).with_replicated([VectorIndex(2), VectorIndex(5)]);
        let batch = Batch::from_index_sets([indexset![2, 5, 40], indexset![5, 80]]);
        let a = route(&batch, &plan, RouterPolicy::RoundRobin);
        let b = route(&batch, &plan, RouterPolicy::RoundRobin);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_queries_touch_no_shard() {
        let plan = range_plan(2, 10);
        let batch = Batch::from_index_sets([indexset![], indexset![3]]);
        let routed = route(&batch, &plan, RouterPolicy::RoundRobin);
        assert_eq!(routed.touched[0], Vec::<usize>::new());
        assert_eq!(routed.touched[1], vec![0]);
    }
}
