//! # fafnir-cluster — sharded multi-tree serving
//!
//! One FAFNIR tree is bounded in both table capacity and hot-row bandwidth
//! by its 32 ranks. This crate scales *out* instead of up: it shards the
//! embedding-index space across multiple independent trees
//! ([`fafnir_core::ShardPlan`] — table-wise, row-hash, or contiguous
//! row-range), routes each query's indices to the shards that own them
//! ([`router`]), and combines per-shard partial accumulators through the
//! [`fafnir_core::ReduceOperator`] trait so every operator
//! (sum/mean/max/min/argmax/top-k) works cluster-wide ([`engine`]).
//!
//! The pieces, in CODA's co-location framing:
//!
//! * **ownership** — a [`fafnir_core::ShardPlan`] pins every row to a home
//!   shard, optionally replicating a frozen hot set everywhere;
//! * **routing** — replicated rows are placed by a marginal-cost model
//!   (per-shard DRAM reads are equal, so cross-shard transfer bytes decide),
//!   with round-robin or least-loaded tie-breaking ([`RouterPolicy`]);
//! * **merge** — split queries combine unfinalized partials in ascending
//!   shard order and finalize once; single-shard queries keep their tree
//!   output bit for bit;
//! * **serving** — [`ClusterEngine`] implements
//!   [`fafnir_core::LookupService`], so the deterministic virtual-time
//!   simulation in `fafnir_serve` (fault plans, retries, hedging) drives a
//!   cluster unchanged, and [`ClusterReport`] joins routing counters with
//!   the serving tail percentiles.
//!
//! ```
//! use fafnir_cluster::{cluster_setup, ClusterReport, RouterPolicy};
//! use fafnir_core::{FafnirConfig, ShardPlan, ShardStrategy};
//! use fafnir_mem::MemoryModelKind;
//! use fafnir_serve::{simulate, ServeConfig, ServeReport};
//! use fafnir_workloads::query::{BatchGenerator, Popularity};
//!
//! # fn main() -> Result<(), fafnir_serve::ServeError> {
//! let plan = ShardPlan::new(4, ShardStrategy::RowRange { universe: 2_000 });
//! let (cluster, source) = cluster_setup(
//!     FafnirConfig::paper_default(),
//!     MemoryModelKind::Fast,
//!     plan,
//!     RouterPolicy::RoundRobin,
//! )?;
//! let mut traffic = BatchGenerator::new(Popularity::Zipf { exponent: 1.15 }, 2_000, 16, 7);
//! let config = ServeConfig { queries: 64, ..ServeConfig::default() };
//! let outcome = simulate(&cluster, &source, &mut traffic, &config)?;
//! let report = ClusterReport::new(&cluster, &ServeReport::new(&config, &outcome));
//! assert_eq!(report.shards, 4);
//! assert!(report.imbalance >= 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod report;
pub mod router;

pub use engine::{cluster_setup, ClusterEngine};
pub use report::{ClusterReport, ClusterStats};
pub use router::{route, RoutedBatch, RouterPolicy, SubQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use fafnir_core::{
        indexset, Batch, FafnirConfig, GatherEngine, LookupService, ReduceOp, ShardPlan,
        ShardStrategy, StripedSource, VectorIndex,
    };
    use fafnir_mem::{MemoryConfig, MemoryModelKind};

    fn cluster(
        shards: usize,
        strategy: ShardStrategy,
        op: ReduceOp,
    ) -> (ClusterEngine, StripedSource) {
        let config = FafnirConfig { op, ..FafnirConfig::paper_default() };
        cluster_setup(
            config,
            MemoryModelKind::Fast,
            ShardPlan::new(shards, strategy),
            RouterPolicy::RoundRobin,
        )
        .expect("paper defaults are valid")
    }

    fn test_batch() -> Batch {
        Batch::from_index_sets([
            indexset![1, 2, 5, 6],
            indexset![3, 4, 5],
            indexset![100, 900, 1500],
            indexset![7],
        ])
    }

    #[test]
    fn one_shard_cluster_matches_the_single_tree_bit_for_bit() {
        for op in [ReduceOp::Sum, ReduceOp::Mean, ReduceOp::TopK { k: 4 }] {
            let (cluster, source) = cluster(1, ShardStrategy::RowHash, op);
            let config = FafnirConfig { op, ..FafnirConfig::paper_default() };
            let mut mem = MemoryConfig::ddr4_2400_4ch();
            mem.model = MemoryModelKind::Fast;
            let single = fafnir_core::FafnirEngine::new(config, mem).expect("valid");
            let batch = test_batch();
            let ours = LookupService::lookup(&cluster, &batch, &source).expect("cluster lookup");
            let theirs = GatherEngine::lookup(&single, &batch, &source).expect("engine lookup");
            assert_eq!(ours.outputs, theirs.outputs, "op {op:?}");
            assert_eq!(ours.traffic.vectors_read, theirs.traffic.vectors_read);
        }
    }

    #[test]
    fn sharded_lookup_is_deterministic() {
        let (cluster, source) =
            cluster(4, ShardStrategy::RowRange { universe: 2_000 }, ReduceOp::Sum);
        let a = LookupService::lookup(&cluster, &test_batch(), &source).expect("lookup");
        let b = LookupService::lookup(&cluster, &test_batch(), &source).expect("lookup");
        assert_eq!(a, b);
    }

    #[test]
    fn split_queries_and_cross_shard_traffic_are_counted() {
        let (cluster, source) =
            cluster(4, ShardStrategy::RowRange { universe: 2_000 }, ReduceOp::Sum);
        // Query 2 spans ranges [0,500), [500,1000), [1500,2000) → 3 shards.
        let _ = LookupService::lookup(&cluster, &test_batch(), &source).expect("lookup");
        let stats = cluster.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.split_queries, 1);
        // Two partial transfers of a 128-float accumulator.
        assert_eq!(stats.cross_shard_bytes, 2 * 128 * 4);
        assert!(stats.imbalance() >= 1.0);
    }

    #[test]
    fn empty_batches_are_rejected_like_the_single_engine() {
        let (cluster, source) = cluster(2, ShardStrategy::RowHash, ReduceOp::Sum);
        let err = LookupService::lookup(&cluster, &Batch::new(), &source).unwrap_err();
        assert!(matches!(err, fafnir_core::FafnirError::InvalidBatch(_)));
    }

    #[test]
    fn replication_spreads_a_hot_row_over_shards() {
        let plan = ShardPlan::new(2, ShardStrategy::RowRange { universe: 100 })
            .with_replicated([VectorIndex(0)]);
        let (cluster, source) = cluster_setup(
            FafnirConfig::paper_default(),
            MemoryModelKind::Fast,
            plan,
            RouterPolicy::RoundRobin,
        )
        .expect("valid");
        // Four bare hot-row queries round-robin across both shards.
        let batch =
            Batch::from_index_sets([indexset![0], indexset![0], indexset![0], indexset![0]]);
        let _ = LookupService::lookup(&cluster, &batch, &source).expect("lookup");
        let stats = cluster.stats();
        assert_eq!(stats.per_shard_queries, vec![2, 2]);
        assert_eq!(stats.replicated_routes, 4);
        // Without replication all four land on shard 0.
        let plan = ShardPlan::new(2, ShardStrategy::RowRange { universe: 100 });
        let (bare, source) = cluster_setup(
            FafnirConfig::paper_default(),
            MemoryModelKind::Fast,
            plan,
            RouterPolicy::RoundRobin,
        )
        .expect("valid");
        let _ = LookupService::lookup(&bare, &batch, &source).expect("lookup");
        assert_eq!(bare.stats().per_shard_queries, vec![4, 0]);
    }

    #[test]
    fn cluster_serves_under_the_simulator_with_faults() {
        use fafnir_serve::{simulate_resilient, ResilienceConfig, ServeConfig};
        use fafnir_workloads::query::{BatchGenerator, Popularity};

        let (cluster, source) = cluster(4, ShardStrategy::RowHash, ReduceOp::Sum);
        let config = ServeConfig { queries: 96, ..ServeConfig::default() };
        let resilience = ResilienceConfig::none(config.workers);
        let mut traffic = BatchGenerator::new(Popularity::Zipf { exponent: 1.15 }, 2_000, 16, 7);
        let outcome = simulate_resilient(&cluster, &source, &mut traffic, &config, &resilience)
            .expect("simulation runs");
        let report = fafnir_serve::ServeReport::with_resilience(&config, &resilience, &outcome);
        assert_eq!(report.served + report.shed, 96);
        let cluster_report = ClusterReport::new(&cluster, &report);
        assert_eq!(cluster_report.shards, 4);
        assert!(cluster_report.latency.p99_ns >= cluster_report.latency.p50_ns);
        let json = cluster_report.to_json();
        assert!(json.contains("\"strategy\": \"rowhash\""));
        assert!(json.contains("\"imbalance\""));
    }
}
