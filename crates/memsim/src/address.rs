//! Physical-address ↔ device-location mapping.
//!
//! FAFNIR maps each embedding vector contiguously inside one rank so a
//! vector read streams from a single open row (Fig. 4b of the paper), while
//! TensorDIMM stripes a vector across all ranks. Both layouts are expressed
//! here as [`AddressMapping`] schemes plus direct [`Location`] construction.

use serde::{Deserialize, Serialize};

use crate::config::Topology;

/// A byte address in the simulated physical address space.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Returns the raw address value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }
}

impl From<u64> for PhysAddr {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A fully decoded DRAM coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index *within the channel* (flattens DIMM × rank-per-DIMM).
    pub rank: usize,
    /// Bank group within the rank.
    pub bank_group: usize,
    /// Bank within the bank group.
    pub bank: usize,
    /// Row within the bank.
    pub row: usize,
    /// Column (64-byte burst index) within the row.
    pub column: usize,
}

impl Location {
    /// Flat bank index within the rank (`bank_group × banks_per_group + bank`).
    #[must_use]
    pub fn flat_bank(&self, topology: &Topology) -> usize {
        self.bank_group * topology.banks_per_group + self.bank
    }

    /// Globally unique rank index across the whole system.
    #[must_use]
    pub fn global_rank(&self, topology: &Topology) -> usize {
        self.channel * topology.ranks_per_channel() + self.rank
    }

    /// The DIMM (within the channel) this location's rank belongs to.
    #[must_use]
    pub fn dimm(&self, topology: &Topology) -> usize {
        self.rank / topology.ranks_per_dimm
    }

    /// Checks all coordinates are inside the topology's bounds.
    #[must_use]
    pub fn in_bounds(&self, topology: &Topology) -> bool {
        self.channel < topology.channels
            && self.rank < topology.ranks_per_channel()
            && self.bank_group < topology.bank_groups
            && self.bank < topology.banks_per_group
            && self.row < topology.rows
            && self.column < topology.columns
    }
}

/// How physical address bits are distributed over device coordinates.
///
/// Bit order is listed from least significant upward; the burst offset
/// (`log2(burst_bytes)` bits) is always the lowest field.
///
/// # Examples
///
/// ```
/// use fafnir_mem::{AddressMapping, MemoryConfig, PhysAddr};
///
/// let topology = MemoryConfig::ddr4_2400_4ch().topology;
/// let mapping = AddressMapping::RowRankBankColumn;
/// let loc = mapping.decode(PhysAddr(0x10040), &topology);
/// assert_eq!(mapping.encode(loc, &topology), PhysAddr(0x10040));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// `offset | column | bank | bank_group | rank | channel | row`.
    ///
    /// Consecutive bursts walk columns of one open row — the layout FAFNIR
    /// uses for embedding vectors (a 512 B vector is 8 sequential bursts in
    /// one row of one rank).
    RowRankBankColumn,
    /// `offset | channel | column | bank | bank_group | rank | row`.
    ///
    /// Fine-grained channel interleaving: consecutive bursts round-robin
    /// over channels. Useful as a contrast configuration.
    ChannelInterleaved,
}

impl AddressMapping {
    /// Decodes a physical address into a device location.
    ///
    /// Addresses beyond the topology capacity wrap (the row field is taken
    /// modulo the row count), which keeps synthetic address generators
    /// simple and safe.
    #[must_use]
    pub fn decode(self, addr: PhysAddr, topology: &Topology) -> Location {
        let mut bits = addr.0 >> log2(topology.burst_bytes);
        let mut take = |count: usize| -> usize {
            let mask = (count as u64) - 1;
            let field = (bits & mask) as usize;
            bits >>= log2(count);
            field
        };
        match self {
            AddressMapping::RowRankBankColumn => {
                let column = take(topology.columns);
                let bank = take(topology.banks_per_group);
                let bank_group = take(topology.bank_groups);
                let rank = take(topology.ranks_per_channel());
                let channel = take(topology.channels);
                let row = (bits as usize) % topology.rows;
                Location { channel, rank, bank_group, bank, row, column }
            }
            AddressMapping::ChannelInterleaved => {
                let channel = take(topology.channels);
                let column = take(topology.columns);
                let bank = take(topology.banks_per_group);
                let bank_group = take(topology.bank_groups);
                let rank = take(topology.ranks_per_channel());
                let row = (bits as usize) % topology.rows;
                Location { channel, rank, bank_group, bank, row, column }
            }
        }
    }

    /// Encodes a device location back into a physical address.
    ///
    /// Inverse of [`AddressMapping::decode`] for in-bounds locations.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `location` is out of bounds for
    /// `topology`.
    #[must_use]
    pub fn encode(self, location: Location, topology: &Topology) -> PhysAddr {
        debug_assert!(location.in_bounds(topology), "location out of bounds: {location:?}");
        let mut bits: u64 = location.row as u64;
        let mut push = |field: usize, count: usize| {
            bits = (bits << log2(count)) | field as u64;
        };
        match self {
            AddressMapping::RowRankBankColumn => {
                push(location.channel, topology.channels);
                push(location.rank, topology.ranks_per_channel());
                push(location.bank_group, topology.bank_groups);
                push(location.bank, topology.banks_per_group);
                push(location.column, topology.columns);
            }
            AddressMapping::ChannelInterleaved => {
                push(location.rank, topology.ranks_per_channel());
                push(location.bank_group, topology.bank_groups);
                push(location.bank, topology.banks_per_group);
                push(location.column, topology.columns);
                push(location.channel, topology.channels);
            }
        }
        PhysAddr(bits << log2(topology.burst_bytes))
    }
}

/// log2 of a power of two.
fn log2(value: usize) -> u32 {
    debug_assert!(value.is_power_of_two());
    value.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;
    use proptest::prelude::*;

    fn topo() -> Topology {
        MemoryConfig::ddr4_2400_4ch().topology
    }

    #[test]
    fn sequential_bursts_share_a_row() {
        let topology = topo();
        let mapping = AddressMapping::RowRankBankColumn;
        let base = mapping.decode(PhysAddr(0x10000), &topology);
        for burst in 1..8 {
            let loc = mapping.decode(PhysAddr(0x10000 + burst * 64), &topology);
            assert_eq!(loc.row, base.row);
            assert_eq!(loc.rank, base.rank);
            assert_eq!(loc.channel, base.channel);
            assert_eq!(loc.column, base.column + burst as usize);
        }
    }

    #[test]
    fn channel_interleaved_rotates_channels() {
        let topology = topo();
        let mapping = AddressMapping::ChannelInterleaved;
        let channels: Vec<usize> =
            (0..4).map(|burst| mapping.decode(PhysAddr(burst * 64), &topology).channel).collect();
        assert_eq!(channels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_address_is_origin() {
        let topology = topo();
        for mapping in [AddressMapping::RowRankBankColumn, AddressMapping::ChannelInterleaved] {
            assert_eq!(mapping.decode(PhysAddr(0), &topology), Location::default());
        }
    }

    #[test]
    fn global_rank_and_dimm_are_consistent() {
        let topology = topo();
        let loc = Location { channel: 2, rank: 5, ..Location::default() };
        assert_eq!(loc.global_rank(&topology), 2 * 8 + 5);
        assert_eq!(loc.dimm(&topology), 2); // rank 5 with 2 ranks/DIMM
    }

    proptest! {
        #[test]
        fn encode_decode_round_trips(
            channel in 0usize..4,
            rank in 0usize..8,
            bank_group in 0usize..4,
            bank in 0usize..4,
            row in 0usize..32_768,
            column in 0usize..128,
        ) {
            let topology = topo();
            let loc = Location { channel, rank, bank_group, bank, row, column };
            for mapping in [AddressMapping::RowRankBankColumn, AddressMapping::ChannelInterleaved] {
                let addr = mapping.encode(loc, &topology);
                prop_assert_eq!(mapping.decode(addr, &topology), loc);
            }
        }

        #[test]
        fn decode_encode_round_trips_within_capacity(raw in 0u64..(1u64 << 40)) {
            let topology = topo();
            let capacity = topology.capacity_bytes();
            let addr = PhysAddr((raw % capacity) & !63); // burst aligned
            for mapping in [AddressMapping::RowRankBankColumn, AddressMapping::ChannelInterleaved] {
                let loc = mapping.decode(addr, &topology);
                prop_assert!(loc.in_bounds(&topology));
                prop_assert_eq!(mapping.encode(loc, &topology), addr);
            }
        }
    }
}
