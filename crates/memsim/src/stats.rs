//! Aggregate counters collected by the memory system.

use serde::{Deserialize, Serialize};

use crate::Cycle;

/// Counters accumulated over a simulation run.
///
/// All counters are monotone. [`MemoryStats::reset`] zeroes a standalone
/// block; to reset a live [`crate::MemorySystem`] between experiment
/// phases use [`crate::MemorySystem::reset_stats`], which checks that no
/// request is mid-flight (a mid-flight reset would split one request's
/// counters across two phases).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Completed read bursts.
    pub reads: u64,
    /// Completed write bursts.
    pub writes: u64,
    /// Row activations issued.
    pub activations: u64,
    /// Precharges issued.
    pub precharges: u64,
    /// Refresh cycles performed.
    pub refreshes: u64,
    /// Bursts that hit an open row.
    pub row_hits: u64,
    /// Bursts to an idle bank (activate, no precharge needed).
    pub row_misses: u64,
    /// Bursts that found a different row open (precharge + activate).
    pub row_conflicts: u64,
    /// Requests completed.
    pub requests_completed: u64,
    /// Sum of request latencies (arrival → last data beat), for averaging.
    pub total_request_latency: Cycle,
    /// Bytes moved across all channel buses.
    pub bytes_transferred: u64,
    /// Deepest controller queue observed (bursts).
    pub max_queue_depth: u64,
}

impl MemoryStats {
    /// New zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// The shared phase-boundary reset used by every memory model: checks
    /// the system is idle (debug builds), then zeroes every counter.
    ///
    /// Centralizing this keeps the "what does a phase reset mean" contract
    /// identical across backends — a model that zeroed a different subset
    /// of counters would silently skew per-phase comparisons. `detail` is
    /// only evaluated when the check fails.
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `idle` is false (a mid-flight reset
    /// would split one request's counters across two phases).
    pub fn reset_phase(&mut self, idle: bool, detail: impl FnOnce() -> String) {
        debug_assert!(idle, "reset_stats on a busy memory system: {}", detail());
        self.reset();
    }

    /// Row-buffer hit rate over all bursts (0.0 when nothing completed).
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean request latency in cycles (0.0 when nothing completed).
    #[must_use]
    pub fn mean_request_latency(&self) -> f64 {
        if self.requests_completed == 0 {
            0.0
        } else {
            self.total_request_latency as f64 / self.requests_completed as f64
        }
    }

    /// Total column accesses (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Merges another stats block into this one (for multi-system sweeps).
    pub fn merge(&mut self, other: &MemoryStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.activations += other.activations;
        self.precharges += other.precharges;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.requests_completed += other.requests_completed;
        self.total_request_latency += other.total_request_latency;
        self.bytes_transferred += other.bytes_transferred;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut stats = MemoryStats::new();
        assert_eq!(stats.row_hit_rate(), 0.0);
        stats.row_hits = 3;
        stats.row_misses = 1;
        assert!((stats.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_latency_divides_by_completions() {
        let mut stats = MemoryStats::new();
        assert_eq!(stats.mean_request_latency(), 0.0);
        stats.requests_completed = 4;
        stats.total_request_latency = 100;
        assert!((stats.mean_request_latency() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = MemoryStats { reads: 1, writes: 2, activations: 3, ..Default::default() };
        let b = MemoryStats { reads: 10, row_hits: 5, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.reads, 11);
        assert_eq!(a.writes, 2);
        assert_eq!(a.row_hits, 5);
        assert_eq!(a.accesses(), 13);
    }

    #[test]
    fn reset_zeroes_everything() {
        let mut stats = MemoryStats { reads: 9, row_conflicts: 2, ..Default::default() };
        stats.reset();
        assert_eq!(stats, MemoryStats::default());
    }
}
