//! Memory-system configuration: topology, timing, and policies.
//!
//! The defaults model a DDR4-2400 system matching the paper's evaluation
//! platform: 4 channels × 4 DIMMs × 2 ranks = 32 ranks, 64-byte bursts.

use serde::{Deserialize, Serialize};

use crate::address::AddressMapping;
use crate::model::MemoryModelKind;

/// Physical organization of the memory system.
///
/// The hierarchy is `channels → DIMMs per channel → ranks per DIMM → bank
/// groups → banks per group → rows → columns`. A "column" here is one
/// 64-byte burst worth of data (the usual granularity a controller
/// schedules), so `columns` counts bursts per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Independent memory channels, each with its own command/data bus.
    pub channels: usize,
    /// DIMMs sharing one channel bus.
    pub dimms_per_channel: usize,
    /// Ranks per DIMM (1 or 2 for commodity DDR4).
    pub ranks_per_dimm: usize,
    /// DDR4 bank groups per rank (4 for x8 devices).
    pub bank_groups: usize,
    /// Banks per bank group (4 for DDR4).
    pub banks_per_group: usize,
    /// Rows per bank.
    pub rows: usize,
    /// 64-byte bursts per row (row size / 64).
    pub columns: usize,
    /// Bytes transferred by one burst (64 for a 64-bit bus with BL8).
    pub burst_bytes: usize,
}

impl Topology {
    /// Total ranks in the system (`channels × dimms × ranks_per_dimm`).
    #[must_use]
    pub fn total_ranks(&self) -> usize {
        self.channels * self.dimms_per_channel * self.ranks_per_dimm
    }

    /// Ranks attached to one channel.
    #[must_use]
    pub fn ranks_per_channel(&self) -> usize {
        self.dimms_per_channel * self.ranks_per_dimm
    }

    /// Banks per rank (`bank_groups × banks_per_group`).
    #[must_use]
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Bytes stored in one row of one bank.
    #[must_use]
    pub fn row_bytes(&self) -> usize {
        self.columns * self.burst_bytes
    }

    /// Total addressable capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_ranks() as u64
            * self.banks_per_rank() as u64
            * self.rows as u64
            * self.row_bytes() as u64
    }

    /// Checks all fields are non-zero and power-of-two where required by the
    /// address mapping.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated rule.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("channels", self.channels),
            ("dimms_per_channel", self.dimms_per_channel),
            ("ranks_per_dimm", self.ranks_per_dimm),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
            ("columns", self.columns),
            ("burst_bytes", self.burst_bytes),
        ];
        for (name, value) in fields {
            if value == 0 {
                return Err(format!("topology field `{name}` must be non-zero"));
            }
            if !value.is_power_of_two() {
                return Err(format!(
                    "topology field `{name}` must be a power of two (got {value})"
                ));
            }
        }
        Ok(())
    }
}

/// DRAM timing parameters in memory-clock cycles.
///
/// Named after the JEDEC DDR4 parameters. Values are for the command clock
/// (half the data rate), e.g. DDR4-2400 runs the command clock at 1200 MHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct Timing {
    /// CAS latency: read command to first data beat.
    pub tCL: u64,
    /// RAS-to-CAS delay: ACT to first RD/WR.
    pub tRCD: u64,
    /// Row precharge time: PRE to next ACT on the same bank.
    pub tRP: u64,
    /// Minimum row-open time: ACT to PRE on the same bank.
    pub tRAS: u64,
    /// ACT-to-ACT on the same bank (`tRAS + tRP`).
    pub tRC: u64,
    /// Column-to-column, different bank group.
    pub tCCD_S: u64,
    /// Column-to-column, same bank group.
    pub tCCD_L: u64,
    /// ACT-to-ACT, different bank group, same rank.
    pub tRRD_S: u64,
    /// ACT-to-ACT, same bank group, same rank.
    pub tRRD_L: u64,
    /// Four-activate window per rank.
    pub tFAW: u64,
    /// Data burst duration on the bus (BL8 = 4 command-clock cycles).
    pub tBL: u64,
    /// Write recovery: last write data to PRE.
    pub tWR: u64,
    /// Read-to-precharge.
    pub tRTP: u64,
    /// Write latency (CWL).
    pub tCWL: u64,
    /// Rank-to-rank data-bus switch penalty.
    pub tRTRS: u64,
    /// Average refresh interval (one REF per rank every tREFI).
    pub tREFI: u64,
    /// Refresh cycle time (the rank is blocked for tRFC per REF).
    pub tRFC: u64,
    /// Command-clock frequency in MHz (for cycle↔time conversion).
    pub clock_mhz: u64,
}

impl Timing {
    /// DDR4-2400 (CL16) timing at 1200 MHz command clock.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        Self {
            tCL: 16,
            tRCD: 16,
            tRP: 16,
            tRAS: 39,
            tRC: 55,
            tCCD_S: 4,
            tCCD_L: 6,
            tRRD_S: 4,
            tRRD_L: 6,
            tFAW: 26,
            tBL: 4,
            tWR: 18,
            tRTP: 9,
            tCWL: 12,
            tRTRS: 2,
            tREFI: 9_360, // 7.8 µs
            tRFC: 420,    // 350 ns (8 Gb devices)
            clock_mhz: 1200,
        }
    }

    /// DDR4-3200 (CL22) timing at 1600 MHz command clock.
    #[must_use]
    pub fn ddr4_3200() -> Self {
        Self {
            tCL: 22,
            tRCD: 22,
            tRP: 22,
            tRAS: 52,
            tRC: 74,
            tCCD_S: 4,
            tCCD_L: 8,
            tRRD_S: 4,
            tRRD_L: 8,
            tFAW: 34,
            tBL: 4,
            tWR: 24,
            tRTP: 12,
            tCWL: 16,
            tRTRS: 2,
            tREFI: 12_480,
            tRFC: 560,
            clock_mhz: 1_600,
        }
    }

    /// DDR5-4800 (CL40) timing at 2400 MHz command clock.
    #[must_use]
    pub fn ddr5_4800() -> Self {
        Self {
            tCL: 40,
            tRCD: 39,
            tRP: 39,
            tRAS: 76,
            tRC: 115,
            tCCD_S: 8,
            tCCD_L: 16,
            tRRD_S: 8,
            tRRD_L: 12,
            tFAW: 32,
            tBL: 8, // BL16
            tWR: 72,
            tRTP: 18,
            tCWL: 38,
            tRTRS: 2,
            tREFI: 9_360,
            tRFC: 984,
            clock_mhz: 2_400,
        }
    }

    /// HBM2 pseudo-channel timing at 1000 MHz command clock.
    ///
    /// The paper's future-work integration attaches leaf PEs to HBM pseudo
    /// channels instead of DDR4 ranks (Sec. VIII).
    #[must_use]
    pub fn hbm2() -> Self {
        Self {
            tCL: 14,
            tRCD: 14,
            tRP: 14,
            tRAS: 34,
            tRC: 48,
            tCCD_S: 2,
            tCCD_L: 4,
            tRRD_S: 4,
            tRRD_L: 6,
            tFAW: 16,
            tBL: 2, // BL4 pseudo-channel burst
            tWR: 16,
            tRTP: 5,
            tCWL: 4,
            tRTRS: 0, // one device per pseudo channel
            tREFI: 3_900,
            tRFC: 260,
            clock_mhz: 1_000,
        }
    }

    /// Converts a cycle count at this clock to nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 * 1_000.0 / self.clock_mhz as f64
    }

    /// Converts nanoseconds to (rounded-up) cycles at this clock.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns * self.clock_mhz as f64 / 1_000.0).ceil() as u64
    }

    /// Checks internal consistency (e.g. `tRC ≥ tRAS + tRP`).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relationship.
    pub fn validate(&self) -> Result<(), String> {
        if self.tRC < self.tRAS + self.tRP {
            return Err(format!(
                "tRC ({}) must be at least tRAS + tRP ({})",
                self.tRC,
                self.tRAS + self.tRP
            ));
        }
        if self.tCCD_L < self.tCCD_S {
            return Err("tCCD_L must be at least tCCD_S".into());
        }
        if self.tRRD_L < self.tRRD_S {
            return Err("tRRD_L must be at least tRRD_S".into());
        }
        if self.clock_mhz == 0 {
            return Err("clock_mhz must be non-zero".into());
        }
        if self.tREFI <= self.tRFC {
            return Err("tREFI must exceed tRFC".into());
        }
        Ok(())
    }
}

/// Command arbitration policy of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// First-ready, first-come-first-served: row hits bypass older
    /// conflicting requests (the default, and what FAFNIR assumes).
    FrFcfs,
    /// Strictly oldest-first: no row-hit bypass. The contrast configuration
    /// for measuring what FR-FCFS's reordering is worth.
    Fcfs,
}

/// Row-buffer management policy of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Leave rows open after an access (exploits locality; FAFNIR default).
    Open,
    /// Precharge immediately after each access (auto-precharge).
    Closed,
    /// Leave rows open, but close any row idle for `timeout` cycles with no
    /// queued access to it — the common middle ground in real controllers.
    Adaptive {
        /// Idle cycles before a speculative close.
        timeout: u64,
    },
}

/// Complete configuration of a [`crate::MemorySystem`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Physical organization.
    pub topology: Topology,
    /// JEDEC timing set.
    pub timing: Timing,
    /// Row-buffer policy.
    pub page_policy: PagePolicy,
    /// Command arbitration policy.
    pub scheduler: SchedulerPolicy,
    /// Physical-address interleaving scheme.
    pub mapping: AddressMapping,
    /// When true, read data flows to rank-attached NDP logic over each
    /// rank's own port instead of the shared channel data bus (how FAFNIR's
    /// leaf PEs and RecNMP's rank PUs gather — only *results* cross the
    /// channel). When false (default), all data serializes on the channel
    /// bus as in a processor-centric system.
    pub ndp_data_path: bool,
    /// Model periodic refresh (one REF per rank every tREFI, blocking the
    /// rank for tRFC). Off by default: the evaluation batches are far
    /// shorter than tREFI, so refresh only matters for long sweeps.
    pub refresh: bool,
    /// Fault injection: one straggler rank, as `(channel, rank-in-channel,
    /// extra cycles per read)`. Models a slow-binned or thermally throttled
    /// device; `None` disables it.
    pub straggler: Option<(usize, usize, u64)>,
    /// Which timing model serves this configuration: the cycle-accurate
    /// reference (default) or the fast-functional analytic model. Selecting
    /// `Fast` changes *timing fidelity only* — functional outputs stay
    /// byte-identical (see [`crate::FastFunctionalMemory`]).
    #[serde(default)]
    pub model: MemoryModelKind,
}

impl MemoryConfig {
    /// The paper's evaluation system: DDR4-2400, 4 channels × 4 DIMMs ×
    /// 2 ranks = 32 ranks, 8 KB rows, open-page, row-interleaved mapping.
    #[must_use]
    pub fn ddr4_2400_4ch() -> Self {
        Self {
            topology: Topology {
                channels: 4,
                dimms_per_channel: 4,
                ranks_per_dimm: 2,
                bank_groups: 4,
                banks_per_group: 4,
                rows: 32_768,
                columns: 128,
                burst_bytes: 64,
            },
            timing: Timing::ddr4_2400(),
            page_policy: PagePolicy::Open,
            scheduler: SchedulerPolicy::FrFcfs,
            mapping: AddressMapping::RowRankBankColumn,
            ndp_data_path: false,
            refresh: false,
            straggler: None,
            model: MemoryModelKind::Cycle,
        }
    }

    /// DDR5-4800 with the paper's 32-rank organization (8 bank groups per
    /// rank, 32-byte sub-channel bursts folded into 64-byte transactions).
    #[must_use]
    pub fn ddr5_4800_4ch() -> Self {
        let mut config = Self::ddr4_2400_4ch();
        config.timing = Timing::ddr5_4800();
        config.topology.bank_groups = 8;
        config.topology.banks_per_group = 4;
        config
    }

    /// HBM2 with 32 pseudo channels — the paper's future-work target: leaf
    /// PEs attach to the 32 pseudo channels instead of DDR4 ranks.
    ///
    /// Each pseudo channel is modelled as an independent channel with one
    /// rank, 16 banks, 2 KB rows, and 32-byte bursts.
    #[must_use]
    pub fn hbm2_32pc() -> Self {
        Self {
            topology: Topology {
                channels: 32,
                dimms_per_channel: 1,
                ranks_per_dimm: 1,
                bank_groups: 4,
                banks_per_group: 4,
                rows: 16_384,
                columns: 64,
                burst_bytes: 32,
            },
            timing: Timing::hbm2(),
            page_policy: PagePolicy::Open,
            scheduler: SchedulerPolicy::FrFcfs,
            mapping: AddressMapping::RowRankBankColumn,
            ndp_data_path: true,
            refresh: false,
            straggler: None,
            model: MemoryModelKind::Cycle,
        }
    }

    /// A single-channel, single-DIMM scaled-down system, useful for tests and
    /// for the 1-rank baseline of Fig. 12.
    #[must_use]
    pub fn ddr4_2400_1ch_1rank() -> Self {
        let mut config = Self::ddr4_2400_4ch();
        config.topology.channels = 1;
        config.topology.dimms_per_channel = 1;
        config.topology.ranks_per_dimm = 1;
        config
    }

    /// A system with the given total rank count, keeping 2 ranks/DIMM and up
    /// to 4 DIMMs/channel, mirroring how the paper sweeps 1→32 ranks
    /// (Fig. 12).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero or not a power of two.
    #[must_use]
    pub fn with_total_ranks(ranks: usize) -> Self {
        assert!(ranks > 0 && ranks.is_power_of_two(), "ranks must be a non-zero power of two");
        let mut config = Self::ddr4_2400_4ch();
        // Fill ranks-per-DIMM first (max 2), then DIMMs (max 4), then channels.
        let ranks_per_dimm = ranks.min(2);
        let dimms = (ranks / ranks_per_dimm).clamp(1, 4);
        let channels = (ranks / (ranks_per_dimm * dimms)).max(1);
        config.topology.ranks_per_dimm = ranks_per_dimm;
        config.topology.dimms_per_channel = dimms;
        config.topology.channels = channels;
        debug_assert_eq!(config.topology.total_ranks(), ranks);
        config
    }

    /// Validates topology and timing together.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        self.topology.validate()?;
        self.timing.validate()
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self::ddr4_2400_4ch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_matches_paper() {
        let config = MemoryConfig::ddr4_2400_4ch();
        assert_eq!(config.topology.total_ranks(), 32);
        assert_eq!(config.topology.ranks_per_channel(), 8);
        assert_eq!(config.topology.banks_per_rank(), 16);
        assert_eq!(config.topology.row_bytes(), 8192);
    }

    #[test]
    fn capacity_is_product_of_dimensions() {
        let config = MemoryConfig::ddr4_2400_4ch();
        let t = config.topology;
        assert_eq!(
            t.capacity_bytes(),
            32 * 16 * 32_768 * 8192 // ranks × banks × rows × row bytes
        );
    }

    #[test]
    fn validate_accepts_presets() {
        MemoryConfig::ddr4_2400_4ch().validate().unwrap();
        MemoryConfig::ddr4_2400_1ch_1rank().validate().unwrap();
    }

    #[test]
    fn validate_rejects_zero_field() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.topology.channels = 0;
        assert!(config.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_power_of_two() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.topology.rows = 1000;
        assert!(config.validate().is_err());
    }

    #[test]
    fn validate_rejects_inconsistent_trc() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.timing.tRC = 10;
        assert!(config.validate().is_err());
    }

    #[test]
    fn with_total_ranks_round_trips() {
        for ranks in [1, 2, 4, 8, 16, 32] {
            let config = MemoryConfig::with_total_ranks(ranks);
            assert_eq!(config.topology.total_ranks(), ranks, "ranks={ranks}");
            config.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn with_total_ranks_rejects_non_power_of_two() {
        let _ = MemoryConfig::with_total_ranks(3);
    }

    #[test]
    fn ddr5_preset_is_valid_and_has_more_banks() {
        let config = MemoryConfig::ddr5_4800_4ch();
        config.validate().unwrap();
        assert_eq!(config.topology.banks_per_rank(), 32);
        assert_eq!(config.topology.total_ranks(), 32);
        // DDR5's doubled burst length at doubled clock: same 64 B burst
        // wall time, while absolute CAS latency in ns grows slightly — the
        // real generational trade (bandwidth up, latency flat-to-worse).
        let ddr4 = Timing::ddr4_2400();
        let ddr5 = config.timing;
        assert!((ddr5.cycles_to_ns(ddr5.tBL) - ddr4.cycles_to_ns(ddr4.tBL)).abs() < 1e-9);
        assert!(ddr5.cycles_to_ns(ddr5.tCL) >= ddr4.cycles_to_ns(ddr4.tCL));
    }

    #[test]
    fn ddr4_3200_is_valid_and_faster_in_time() {
        let fast = Timing::ddr4_3200();
        fast.validate().unwrap();
        let slow = Timing::ddr4_2400();
        // More cycles but a faster clock: tRCD in ns improves.
        assert!(fast.cycles_to_ns(fast.tRCD) < slow.cycles_to_ns(slow.tRCD) * 1.05);
    }

    #[test]
    fn hbm_preset_is_valid_and_32_wide() {
        let config = MemoryConfig::hbm2_32pc();
        config.validate().unwrap();
        assert_eq!(config.topology.total_ranks(), 32);
        assert_eq!(config.topology.row_bytes(), 2048);
        assert!(config.ndp_data_path);
    }

    #[test]
    fn refresh_timing_is_consistent() {
        let timing = Timing::ddr4_2400();
        assert!(timing.tREFI > timing.tRFC);
        let mut bad = timing;
        bad.tREFI = bad.tRFC;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn cycle_time_conversion_round_trips() {
        let timing = Timing::ddr4_2400();
        let ns = timing.cycles_to_ns(1200);
        assert!((ns - 1000.0).abs() < 1e-9);
        assert_eq!(timing.ns_to_cycles(1000.0), 1200);
    }
}
