//! Pluggable memory timing models: the cycle-accurate reference and a
//! fast-functional analytic model.
//!
//! [`MemoryModel`] abstracts the submit/drain/completion surface that the
//! gather pipeline drives, with two implementations:
//!
//! * [`crate::MemorySystem`] — the cycle-accurate, command-level simulator
//!   (unchanged; still the calibrated reference), and
//! * [`FastFunctionalMemory`] — an analytic model that skips per-command
//!   DRAM state entirely and prices each read **eagerly at submit time**
//!   from the address stream: per-bank row-buffer hit/miss/conflict runs,
//!   bank and data-bus pacing ceilings, an optional straggler-rank penalty,
//!   and refresh as a bandwidth derate factor.
//!
//! The fast model keeps *functional* behaviour identical (every request
//! completes, burst counts and byte counts match the cycle model exactly)
//! while timing is approximate: it ignores FR-FCFS reordering, tFAW/tRRD
//! activation pacing and bus turnaround, which is precisely the divergence
//! the `fafnir-serve` calibration harness measures and gates. Selection is
//! explicit via [`MemoryConfig::model`] — never a silent change to the
//! calibrated paths (see DESIGN.md §13).

use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::address::Location;
use crate::config::{MemoryConfig, PagePolicy};
use crate::request::{AccessKind, Completion, Request, RequestId};
use crate::stats::MemoryStats;
use crate::system::MemorySystem;
use crate::Cycle;

/// Which memory timing model a [`MemoryConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MemoryModelKind {
    /// The cycle-accurate command-level simulator (the default and the
    /// calibrated reference).
    #[default]
    Cycle,
    /// The fast-functional analytic model ([`FastFunctionalMemory`]).
    Fast,
}

impl std::fmt::Display for MemoryModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryModelKind::Cycle => write!(f, "cycle"),
            MemoryModelKind::Fast => write!(f, "fast"),
        }
    }
}

impl FromStr for MemoryModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cycle" => Ok(MemoryModelKind::Cycle),
            "fast" => Ok(MemoryModelKind::Fast),
            other => Err(format!("unknown memory model `{other}` (cycle|fast)")),
        }
    }
}

/// The submit/drain/completion surface shared by every memory timing model.
///
/// The gather pipeline in `fafnir-core` is written against this trait, so a
/// plan can run on the cycle-accurate [`MemorySystem`] or on
/// [`FastFunctionalMemory`] without structural changes; only completion
/// *times* (and timing-derived stats) may differ between implementations.
pub trait MemoryModel {
    /// The configuration this model was built with.
    fn config(&self) -> &MemoryConfig;

    /// Current simulation cycle (for the fast model: the latest priced
    /// completion).
    fn now(&self) -> Cycle;

    /// Submits a request, returning the id to look up its [`Completion`].
    fn submit(&mut self, request: Request) -> RequestId;

    /// Submits a read of `bytes` at a device location.
    fn submit_read_at(&mut self, location: Location, bytes: usize, arrival: Cycle) -> RequestId;

    /// Drains all outstanding work; returns the cycle the system went idle.
    fn run_until_idle(&mut self) -> Cycle;

    /// Completion record for a finished request.
    fn completion(&self, id: RequestId) -> Option<&Completion>;

    /// Drains and returns all recorded completions, ordered by
    /// `(finish_cycle, id)`.
    fn take_completions(&mut self) -> Vec<Completion>;

    /// Whether no work is outstanding.
    fn is_idle(&self) -> bool;

    /// Zeroes accumulated counters at an experiment-phase boundary.
    fn reset_stats(&mut self);

    /// Accumulated counters.
    fn stats(&self) -> MemoryStats;
}

impl MemoryModel for MemorySystem {
    fn config(&self) -> &MemoryConfig {
        MemorySystem::config(self)
    }

    fn now(&self) -> Cycle {
        MemorySystem::now(self)
    }

    fn submit(&mut self, request: Request) -> RequestId {
        MemorySystem::submit(self, request)
    }

    fn submit_read_at(&mut self, location: Location, bytes: usize, arrival: Cycle) -> RequestId {
        MemorySystem::submit_read_at(self, location, bytes, arrival)
    }

    fn run_until_idle(&mut self) -> Cycle {
        MemorySystem::run_until_idle(self)
    }

    fn completion(&self, id: RequestId) -> Option<&Completion> {
        MemorySystem::completion(self, id)
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        MemorySystem::take_completions(self)
    }

    fn is_idle(&self) -> bool {
        MemorySystem::is_idle(self)
    }

    fn reset_stats(&mut self) {
        MemorySystem::reset_stats(self);
    }

    fn stats(&self) -> MemoryStats {
        MemorySystem::stats(self)
    }
}

/// Per-bank analytic state: the open row and pacing clocks.
#[derive(Debug, Clone, Copy)]
struct FastBank {
    /// Row left open by the last access (`u64::MAX` = closed).
    open_row: u64,
    /// Earliest cycle the bank can issue its next column access.
    free: Cycle,
    /// Issue cycle of the last access (drives the adaptive-close estimate).
    last_issue: Cycle,
}

impl FastBank {
    const CLOSED: u64 = u64::MAX;
}

/// Per-data-path backlog estimate feeding `max_queue_depth`.
#[derive(Debug, Clone, Copy, Default)]
struct FastBacklog {
    drained_by: Cycle,
    queued: u64,
}

/// The fast-functional memory model: analytic per-read pricing, no
/// per-command DRAM state.
///
/// Every burst is priced **eagerly at submit time**, in submission order:
///
/// ```text
/// issue  = max(arrival, bank.free, bus.free) + row_delay
/// finish = issue + tCL + tBL (+ straggler penalty on the faulted rank)
/// ```
///
/// where `row_delay` is 0 for a row-buffer hit, `tRCD` for a miss and
/// `tRP + tRCD` for a conflict, estimated from consecutive-row runs in the
/// per-bank address stream. The bank clock advances by `tCCD_L` per burst
/// and the data-path clock (per rank under `ndp_data_path`, per channel
/// otherwise) by `max(tBL, tCCD_S)` — the two bandwidth ceilings. Closed
/// page policy makes every access a miss plus a precharge; the adaptive
/// policy closes a row whose bank sat idle past the timeout. When refresh
/// is enabled, reported times are derated by `tREFI / (tREFI − tRFC)`
/// instead of simulating REF commands.
///
/// Functional counters (`reads`, `bytes_transferred`, burst outcome counts)
/// are computed from the same address stream the cycle model sees, so they
/// match it exactly on identical submissions.
#[derive(Debug, Clone)]
pub struct FastFunctionalMemory {
    config: MemoryConfig,
    banks: Vec<FastBank>,
    /// One pacing clock per data path (rank or channel).
    buses: Vec<Cycle>,
    backlogs: Vec<FastBacklog>,
    completions: Vec<Completion>,
    /// `completions[i]` holds the request with id `id_base + i`.
    id_base: u64,
    next_id: u64,
    now: Cycle,
    stats: MemoryStats,
}

impl FastFunctionalMemory {
    /// Builds a fast-functional model of `config`'s system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (same contract as
    /// [`MemorySystem::new`]).
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid memory config: {e}"));
        let topology = config.topology;
        let banks = topology.total_ranks() * topology.banks_per_rank();
        let buses = if config.ndp_data_path { topology.total_ranks() } else { topology.channels };
        Self {
            config,
            banks: vec![FastBank { open_row: FastBank::CLOSED, free: 0, last_issue: 0 }; banks],
            buses: vec![0; buses],
            backlogs: vec![FastBacklog::default(); buses],
            completions: Vec::new(),
            id_base: 0,
            next_id: 0,
            now: 0,
            stats: MemoryStats::new(),
        }
    }

    /// Refresh bandwidth derate: the fraction of time a rank is *not*
    /// blocked by REF is `(tREFI − tRFC) / tREFI`, so completion times
    /// stretch by the reciprocal.
    fn derate(&self, cycle: Cycle) -> Cycle {
        if !self.config.refresh {
            return cycle;
        }
        let t = self.config.timing;
        // validate() guarantees tREFI > tRFC.
        (cycle as f64 * t.tREFI as f64 / (t.tREFI - t.tRFC) as f64).round() as Cycle
    }

    /// Index of the data path serving `location`.
    fn bus_index(&self, location: Location) -> usize {
        if self.config.ndp_data_path {
            location.global_rank(&self.config.topology)
        } else {
            location.channel
        }
    }

    /// Prices one burst, returning `(issue, finish)` in underated cycles.
    fn price_burst(
        &mut self,
        location: Location,
        kind: AccessKind,
        arrival: Cycle,
    ) -> (Cycle, Cycle) {
        let topology = self.config.topology;
        let t = self.config.timing;
        let bank_index = location.global_rank(&topology) * topology.banks_per_rank()
            + location.flat_bank(&topology);
        let bus_index = self.bus_index(location);
        let bank = self.banks[bank_index];
        let ready = arrival.max(bank.free).max(self.buses[bus_index]);

        // Row-buffer outcome from the consecutive-row run in this bank's
        // stream, with the adaptive policy's idle-timeout close estimated
        // from the gap since the bank's last access.
        let open_row = match self.config.page_policy {
            PagePolicy::Adaptive { timeout }
                if bank.open_row != FastBank::CLOSED
                    && ready.saturating_sub(bank.last_issue) > timeout =>
            {
                self.stats.precharges += 1; // the speculative close
                FastBank::CLOSED
            }
            _ => bank.open_row,
        };
        let row = location.row as u64;
        let row_delay = if open_row == row {
            self.stats.row_hits += 1;
            0
        } else if open_row == FastBank::CLOSED {
            self.stats.row_misses += 1;
            self.stats.activations += 1;
            t.tRCD
        } else {
            self.stats.row_conflicts += 1;
            self.stats.activations += 1;
            self.stats.precharges += 1;
            t.tRP + t.tRCD
        };

        let issue = ready + row_delay;
        let access_latency = match kind {
            AccessKind::Read => t.tCL,
            AccessKind::Write => t.tCWL,
        };
        let straggler = match (kind, self.config.straggler) {
            (AccessKind::Read, Some((channel, rank, extra)))
                if channel == location.channel && rank == location.rank =>
            {
                extra
            }
            _ => 0,
        };
        let finish = issue + access_latency + t.tBL + straggler;

        let next_open = match self.config.page_policy {
            PagePolicy::Closed => {
                self.stats.precharges += 1; // auto-precharge after the access
                FastBank::CLOSED
            }
            _ => row,
        };
        self.banks[bank_index] =
            FastBank { open_row: next_open, free: issue + t.tCCD_L, last_issue: issue };
        self.buses[bus_index] = issue + t.tBL.max(t.tCCD_S);

        match kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.stats.bytes_transferred += topology.burst_bytes as u64;

        // Backlog estimate for `max_queue_depth`: bursts stack up on a data
        // path until its pacing clock passes their arrival.
        let backlog = &mut self.backlogs[bus_index];
        if arrival >= backlog.drained_by {
            backlog.queued = 0;
        }
        backlog.queued += 1;
        backlog.drained_by = backlog.drained_by.max(finish);
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(backlog.queued);

        (issue, finish)
    }
}

impl MemoryModel for FastFunctionalMemory {
    fn config(&self) -> &MemoryConfig {
        &self.config
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn submit(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let bursts = request.bursts(self.config.topology.burst_bytes);
        let mut start = Cycle::MAX;
        let mut finish = 0;
        let (hits0, misses0, conflicts0) =
            (self.stats.row_hits, self.stats.row_misses, self.stats.row_conflicts);
        for burst in 0..bursts {
            let addr = crate::PhysAddr(
                request.addr.0 + burst as u64 * self.config.topology.burst_bytes as u64,
            );
            let location = self.config.mapping.decode(addr, &self.config.topology);
            let (issue, end) = self.price_burst(location, request.kind, request.arrival);
            start = start.min(issue);
            finish = finish.max(end);
        }
        let completion = Completion {
            id,
            finish_cycle: self.derate(finish),
            start_cycle: self.derate(start),
            row_hits: (self.stats.row_hits - hits0) as u32,
            row_misses: (self.stats.row_misses - misses0) as u32,
            row_conflicts: (self.stats.row_conflicts - conflicts0) as u32,
        };
        self.now = self.now.max(completion.finish_cycle);
        self.stats.requests_completed += 1;
        self.stats.total_request_latency += completion.finish_cycle.saturating_sub(request.arrival);
        self.completions.push(completion);
        id
    }

    fn submit_read_at(&mut self, location: Location, bytes: usize, arrival: Cycle) -> RequestId {
        let addr = self.config.mapping.encode(location, &self.config.topology);
        self.submit(Request::read(addr.0, bytes).at(arrival))
    }

    /// Eager pricing means every submitted request is already complete;
    /// this just reports the latest completion.
    fn run_until_idle(&mut self) -> Cycle {
        self.now
    }

    fn completion(&self, id: RequestId) -> Option<&Completion> {
        let slot = id.0.checked_sub(self.id_base)?;
        self.completions.get(slot as usize)
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        let mut all = std::mem::take(&mut self.completions);
        all.sort_by_key(|c| (c.finish_cycle, c.id));
        self.id_base = self.next_id;
        all
    }

    fn is_idle(&self) -> bool {
        true
    }

    fn reset_stats(&mut self) {
        let detail = || "0 pending requests (eager pricing completes at submit)".to_string();
        self.stats.reset_phase(true, detail);
    }

    fn stats(&self) -> MemoryStats {
        let mut stats = self.stats;
        if self.config.refresh && self.now > 0 {
            // One REF per rank per tREFI of (derated) elapsed time.
            stats.refreshes =
                self.config.topology.total_ranks() as u64 * (self.now / self.config.timing.tREFI);
        }
        stats
    }
}

/// Static dispatch over the two memory models, selected by
/// [`MemoryConfig::model`].
#[derive(Debug, Clone)]
pub enum AnyMemory {
    /// The cycle-accurate reference.
    Cycle(MemorySystem),
    /// The fast-functional analytic model.
    Fast(FastFunctionalMemory),
}

impl AnyMemory {
    /// Builds the model named by `config.model`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        match config.model {
            MemoryModelKind::Cycle => AnyMemory::Cycle(MemorySystem::new(config)),
            MemoryModelKind::Fast => AnyMemory::Fast(FastFunctionalMemory::new(config)),
        }
    }
}

macro_rules! delegate {
    ($self:ident, $m:ident, $($arg:expr),*) => {
        match $self {
            AnyMemory::Cycle(inner) => inner.$m($($arg),*),
            AnyMemory::Fast(inner) => inner.$m($($arg),*),
        }
    };
}

impl MemoryModel for AnyMemory {
    fn config(&self) -> &MemoryConfig {
        delegate!(self, config,)
    }

    fn now(&self) -> Cycle {
        delegate!(self, now,)
    }

    fn submit(&mut self, request: Request) -> RequestId {
        delegate!(self, submit, request)
    }

    fn submit_read_at(&mut self, location: Location, bytes: usize, arrival: Cycle) -> RequestId {
        delegate!(self, submit_read_at, location, bytes, arrival)
    }

    fn run_until_idle(&mut self) -> Cycle {
        delegate!(self, run_until_idle,)
    }

    fn completion(&self, id: RequestId) -> Option<&Completion> {
        delegate!(self, completion, id)
    }

    fn take_completions(&mut self) -> Vec<Completion> {
        delegate!(self, take_completions,)
    }

    fn is_idle(&self) -> bool {
        delegate!(self, is_idle,)
    }

    fn reset_stats(&mut self) {
        delegate!(self, reset_stats,)
    }

    fn stats(&self) -> MemoryStats {
        delegate!(self, stats,)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MemoryConfig {
        MemoryConfig::ddr4_2400_1ch_1rank()
    }

    fn read_at(
        memory: &mut FastFunctionalMemory,
        bank: usize,
        row: usize,
        column: usize,
        bytes: usize,
    ) -> RequestId {
        let location =
            Location { channel: 0, rank: 0, bank_group: bank / 4, bank: bank % 4, row, column };
        memory.submit_read_at(location, bytes, 0)
    }

    #[test]
    fn kind_parses_and_displays_round_trip() {
        assert_eq!("cycle".parse::<MemoryModelKind>().unwrap(), MemoryModelKind::Cycle);
        assert_eq!("fast".parse::<MemoryModelKind>().unwrap(), MemoryModelKind::Fast);
        assert_eq!(MemoryModelKind::Fast.to_string(), "fast");
        assert_eq!(MemoryModelKind::default(), MemoryModelKind::Cycle);
        let err = "warp".parse::<MemoryModelKind>().unwrap_err();
        assert!(err.contains("unknown memory model `warp`"), "{err}");
        assert!(err.contains("cycle|fast"), "{err}");
    }

    #[test]
    fn every_preset_defaults_to_the_cycle_model() {
        // Backward compatibility: configurations that predate the field
        // must select the calibrated reference model.
        for preset in [
            MemoryConfig::default(),
            MemoryConfig::ddr4_2400_4ch(),
            MemoryConfig::ddr5_4800_4ch(),
            MemoryConfig::hbm2_32pc(),
            MemoryConfig::ddr4_2400_1ch_1rank(),
            MemoryConfig::with_total_ranks(8),
        ] {
            assert_eq!(preset.model, MemoryModelKind::Cycle);
        }
    }

    #[test]
    fn vector_read_latency_matches_cycle_bounds() {
        // Mirror of the cycle model's activation-plus-burst-stream bound: a
        // single 512 B read must land inside the same envelope the cycle
        // tests pin ([tRCD + tCL + 7·tCCD_L + tBL, +3·tCCD_L]).
        let mut memory = FastFunctionalMemory::new(config());
        let id = read_at(&mut memory, 0, 5, 0, 512);
        let t = config().timing;
        let finish = memory.completion(id).unwrap().finish_cycle;
        let floor = t.tRCD + t.tCL + 7 * t.tCCD_L.min(t.tBL) + t.tBL;
        assert!(finish >= floor, "finish {finish} below floor {floor}");
        assert!(finish <= floor + 3 * t.tCCD_L, "finish {finish} too slow");
        // 8 bursts: one miss activation, seven row hits.
        let stats = memory.stats();
        assert_eq!(stats.reads, 8);
        assert_eq!(stats.row_misses, 1);
        assert_eq!(stats.row_hits, 7);
        assert_eq!(stats.activations, 1);
        assert_eq!(stats.bytes_transferred, 512);
    }

    #[test]
    fn reads_to_same_bank_different_rows_serialize() {
        let mut memory = FastFunctionalMemory::new(config());
        let a = read_at(&mut memory, 0, 0, 0, 64);
        let b = read_at(&mut memory, 0, 1, 0, 64);
        let fa = memory.completion(a).unwrap().finish_cycle;
        let fb = memory.completion(b).unwrap().finish_cycle;
        assert!(fb > fa + config().timing.tRP, "conflict must pay the precharge: {fa} vs {fb}");
        assert_eq!(memory.stats().row_conflicts, 1);
        assert_eq!(memory.stats().precharges, 1);
    }

    #[test]
    fn reads_to_different_channels_are_fully_parallel() {
        let mut memory = FastFunctionalMemory::new(MemoryConfig::ddr4_2400_4ch());
        let ids: Vec<RequestId> = (0..4)
            .map(|channel| {
                let location =
                    Location { channel, rank: 0, bank_group: 0, bank: 0, row: 0, column: 0 };
                memory.submit_read_at(location, 512, 0)
            })
            .collect();
        let finishes: Vec<Cycle> =
            ids.iter().map(|&id| memory.completion(id).unwrap().finish_cycle).collect();
        assert!(finishes.iter().all(|&f| f == finishes[0]), "channels must not interfere");
    }

    #[test]
    fn straggler_rank_slows_only_its_own_reads() {
        let mut fast_config = MemoryConfig::ddr4_2400_4ch();
        fast_config.straggler = Some((0, 0, 500));
        let mut memory = FastFunctionalMemory::new(fast_config);
        let slow = memory.submit_read_at(
            Location { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 0, column: 0 },
            64,
            0,
        );
        let ok = memory.submit_read_at(
            Location { channel: 1, rank: 0, bank_group: 0, bank: 0, row: 0, column: 0 },
            64,
            0,
        );
        let slow_finish = memory.completion(slow).unwrap().finish_cycle;
        let ok_finish = memory.completion(ok).unwrap().finish_cycle;
        assert!(slow_finish >= ok_finish + 400, "straggler: {slow_finish} vs {ok_finish}");
    }

    #[test]
    fn closed_page_precharges_every_access() {
        let mut closed = config();
        closed.page_policy = PagePolicy::Closed;
        let mut memory = FastFunctionalMemory::new(closed);
        let open_finish = {
            let mut open = FastFunctionalMemory::new(config());
            let id = read_at(&mut open, 0, 0, 0, 512);
            open.completion(id).unwrap().finish_cycle
        };
        let id = read_at(&mut memory, 0, 0, 0, 512);
        let stats = memory.stats();
        assert_eq!(stats.row_hits, 0, "closed page never hits");
        assert_eq!(stats.row_misses, 8);
        assert_eq!(stats.precharges, 8);
        assert!(memory.completion(id).unwrap().finish_cycle > open_finish);
    }

    #[test]
    fn refresh_derates_completion_times() {
        let mut with_refresh = config();
        with_refresh.refresh = true;
        let mut slow = FastFunctionalMemory::new(with_refresh);
        let mut fast = FastFunctionalMemory::new(config());
        let a = read_at(&mut slow, 0, 0, 0, 512);
        let b = read_at(&mut fast, 0, 0, 0, 512);
        let derated = slow.completion(a).unwrap().finish_cycle;
        let plain = fast.completion(b).unwrap().finish_cycle;
        assert!(derated > plain, "refresh must stretch time: {derated} vs {plain}");
        let t = config().timing;
        let expected = (plain as f64 * t.tREFI as f64 / (t.tREFI - t.tRFC) as f64).round();
        assert_eq!(derated, expected as u64);
    }

    #[test]
    fn burst_counters_match_the_cycle_model_exactly() {
        // Same address stream through both models: the functional counters
        // (bursts, bytes, outcome totals) must agree exactly — only timing
        // may differ.
        let mut cycle = MemorySystem::new(config());
        let mut fast = FastFunctionalMemory::new(config());
        for i in 0..16u64 {
            let addr = i * 512;
            cycle.submit(Request::read(addr, 512));
            fast.submit(Request::read(addr, 512));
        }
        cycle.run_until_idle();
        fast.run_until_idle();
        let c = MemoryModel::stats(&cycle);
        let f = fast.stats();
        assert_eq!(f.reads, c.reads);
        assert_eq!(f.bytes_transferred, c.bytes_transferred);
        assert_eq!(f.requests_completed, c.requests_completed);
        assert_eq!(
            f.row_hits + f.row_misses + f.row_conflicts,
            c.row_hits + c.row_misses + c.row_conflicts,
            "every burst has exactly one outcome"
        );
    }

    #[test]
    fn take_completions_drains_in_finish_order_and_rebases_ids() {
        let mut memory = FastFunctionalMemory::new(config());
        let a = read_at(&mut memory, 0, 0, 0, 64);
        let b = read_at(&mut memory, 1, 0, 0, 64);
        let drained = memory.take_completions();
        assert_eq!(drained.len(), 2);
        assert!(drained.windows(2).all(|w| w[0].finish_cycle <= w[1].finish_cycle));
        assert!(memory.completion(a).is_none());
        assert!(memory.completion(b).is_none());
        let c = read_at(&mut memory, 0, 0, 0, 64);
        assert!(memory.completion(c).is_some(), "ids rebase after draining");
    }

    #[test]
    fn reset_stats_zeroes_via_the_shared_path() {
        let mut memory = FastFunctionalMemory::new(config());
        let _ = read_at(&mut memory, 0, 0, 0, 512);
        assert!(memory.stats().reads > 0);
        memory.reset_stats();
        assert_eq!(MemoryModel::stats(&memory), MemoryStats::default());
        assert!(memory.is_idle());
    }

    #[test]
    fn any_memory_dispatches_on_the_config_field() {
        let mut fast_config = MemoryConfig::ddr4_2400_4ch();
        fast_config.model = MemoryModelKind::Fast;
        assert!(matches!(AnyMemory::new(fast_config), AnyMemory::Fast(_)));
        assert!(matches!(AnyMemory::new(MemoryConfig::ddr4_2400_4ch()), AnyMemory::Cycle(_)));
        // The trait surface works through the enum.
        let mut memory = AnyMemory::new(fast_config);
        let id = memory.submit(Request::read(0, 512));
        memory.run_until_idle();
        assert!(memory.completion(id).is_some());
        assert_eq!(MemoryModel::stats(&memory).reads, 8);
    }

    #[test]
    fn adaptive_timeout_closes_idle_rows() {
        let mut adaptive = config();
        adaptive.page_policy = PagePolicy::Adaptive { timeout: 10 };
        let mut memory = FastFunctionalMemory::new(adaptive);
        // Same row twice, but the second read arrives long after the bank
        // went idle: the row was speculatively closed, so it re-activates.
        let a = {
            let location =
                Location { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 7, column: 0 };
            memory.submit_read_at(location, 64, 0)
        };
        let _ = a;
        let location = Location { channel: 0, rank: 0, bank_group: 0, bank: 0, row: 7, column: 1 };
        let b = memory.submit_read_at(location, 64, 1_000);
        let stats = memory.stats();
        assert_eq!(stats.row_misses, 2, "both accesses re-activate");
        assert_eq!(stats.row_hits, 0);
        let t = config().timing;
        let finish = memory.completion(b).unwrap().finish_cycle;
        assert_eq!(finish, 1_000 + t.tRCD + t.tCL + t.tBL);
    }
}
