//! Independent JEDEC timing verification of recorded command streams.
//!
//! The controller enforces timing while scheduling; this module re-checks a
//! recorded [`CommandLog`] against the constraints *independently*, so a
//! scheduling bug cannot hide behind its own bookkeeping. Property tests
//! drive random traffic through the system and assert the log verifies.

use serde::{Deserialize, Serialize};

use crate::config::Timing;
use crate::Cycle;

/// A DRAM command class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Row activation.
    Act,
    /// Precharge.
    Pre,
    /// Column read.
    Rd,
    /// Column write.
    Wr,
    /// Refresh (blocks the rank for tRFC).
    Ref,
}

/// One issued command with its coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandRecord {
    /// Issue cycle.
    pub cycle: Cycle,
    /// Command class.
    pub kind: CommandKind,
    /// Rank within the channel.
    pub rank: usize,
    /// Flat bank index within the rank (ignored for `Ref`).
    pub bank: usize,
    /// Row (for `Act`; ignored otherwise).
    pub row: usize,
}

/// An append-only log of commands issued on one channel.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CommandLog {
    records: Vec<CommandRecord>,
}

impl CommandLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: CommandRecord) {
        self.records.push(record);
    }

    /// The recorded commands in issue order.
    #[must_use]
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// A violated timing constraint found by [`verify_log`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingViolation {
    /// The JEDEC parameter violated (e.g. "tRCD").
    pub parameter: &'static str,
    /// Index of the offending record in the log.
    pub record_index: usize,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for TimingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated at record {}: {}", self.parameter, self.record_index, self.detail)
    }
}

/// Checks every pairwise constraint in the log. Returns all violations
/// (empty = legal stream).
///
/// Verified constraints: tRCD (ACT→RD/WR), tRAS (ACT→PRE), tRP (PRE→ACT),
/// tRC (ACT→ACT same bank), tRRD_S/L (ACT→ACT same rank), tFAW (four-ACT
/// window), tCCD_S/L (column→column same rank), tRTP (RD→PRE), command
/// ordering (no column to a closed/mismatched row), and tRFC (rank blocked
/// after REF).
#[must_use]
pub fn verify_log(
    log: &CommandLog,
    timing: &Timing,
    banks_per_group: usize,
) -> Vec<TimingViolation> {
    let mut violations = Vec::new();
    let records = log.records();

    // Per-(rank, bank) state replay.
    use std::collections::HashMap;
    #[derive(Clone, Copy)]
    struct BankReplay {
        open_row: Option<usize>,
        last_act: Option<Cycle>,
        last_pre: Option<Cycle>,
        last_rd: Option<Cycle>,
        last_wr: Option<Cycle>,
    }
    let mut banks: HashMap<(usize, usize), BankReplay> = HashMap::new();
    let mut rank_acts: HashMap<usize, Vec<(Cycle, usize)>> = HashMap::new(); // (cycle, bank)
    let mut rank_cols: HashMap<usize, (Cycle, usize)> = HashMap::new(); // last col (cycle, bank)
    let mut rank_ref: HashMap<usize, Cycle> = HashMap::new(); // last REF cycle

    fn violation(parameter: &'static str, index: usize, detail: String) -> TimingViolation {
        TimingViolation { parameter, record_index: index, detail }
    }

    for (index, record) in records.iter().enumerate() {
        let key = (record.rank, record.bank);
        let state = banks.entry(key).or_insert(BankReplay {
            open_row: None,
            last_act: None,
            last_pre: None,
            last_rd: None,
            last_wr: None,
        });
        // Refresh blackout applies to every command on the rank.
        if record.kind != CommandKind::Ref {
            if let Some(&ref_at) = rank_ref.get(&record.rank) {
                if record.cycle < ref_at + timing.tRFC {
                    violations.push(violation(
                        "tRFC",
                        index,
                        format!("command at {} inside refresh from {ref_at}", record.cycle),
                    ));
                }
            }
        }
        match record.kind {
            CommandKind::Act => {
                if state.open_row.is_some() {
                    violations.push(violation(
                        "ordering",
                        index,
                        "ACT on a bank with an open row".into(),
                    ));
                }
                if let Some(last) = state.last_act {
                    if record.cycle < last + timing.tRC {
                        violations.push(violation(
                            "tRC",
                            index,
                            format!("{} < {} + {}", record.cycle, last, timing.tRC),
                        ));
                    }
                }
                if let Some(last) = state.last_pre {
                    if record.cycle < last + timing.tRP {
                        violations.push(violation(
                            "tRP",
                            index,
                            format!("{} < {} + {}", record.cycle, last, timing.tRP),
                        ));
                    }
                }
                let acts = rank_acts.entry(record.rank).or_default();
                if let Some(&(last, bank)) = acts.last() {
                    let gap = if bank / banks_per_group == record.bank / banks_per_group {
                        timing.tRRD_L
                    } else {
                        timing.tRRD_S
                    };
                    if record.cycle < last + gap {
                        violations.push(violation(
                            "tRRD",
                            index,
                            format!("{} < {} + {gap}", record.cycle, last),
                        ));
                    }
                }
                if acts.len() >= 4 {
                    let oldest = acts[acts.len() - 4].0;
                    if record.cycle < oldest + timing.tFAW {
                        violations.push(violation(
                            "tFAW",
                            index,
                            format!("{} < {} + {}", record.cycle, oldest, timing.tFAW),
                        ));
                    }
                }
                acts.push((record.cycle, record.bank));
                state.open_row = Some(record.row);
                state.last_act = Some(record.cycle);
            }
            CommandKind::Pre => {
                if let Some(last) = state.last_act {
                    if record.cycle < last + timing.tRAS {
                        violations.push(violation(
                            "tRAS",
                            index,
                            format!("{} < {} + {}", record.cycle, last, timing.tRAS),
                        ));
                    }
                }
                if let Some(last) = state.last_rd {
                    if record.cycle < last + timing.tRTP {
                        violations.push(violation(
                            "tRTP",
                            index,
                            format!("{} < {} + {}", record.cycle, last, timing.tRTP),
                        ));
                    }
                }
                if let Some(last) = state.last_wr {
                    let earliest = last + timing.tCWL + timing.tBL + timing.tWR;
                    if record.cycle < earliest {
                        violations.push(violation(
                            "tWR",
                            index,
                            format!("{} < {earliest}", record.cycle),
                        ));
                    }
                }
                state.open_row = None;
                state.last_pre = Some(record.cycle);
            }
            CommandKind::Rd | CommandKind::Wr => {
                if state.open_row.is_none() {
                    violations.push(violation(
                        "ordering",
                        index,
                        "column command to a closed bank".into(),
                    ));
                }
                if let Some(last) = state.last_act {
                    if record.cycle < last + timing.tRCD {
                        violations.push(violation(
                            "tRCD",
                            index,
                            format!("{} < {} + {}", record.cycle, last, timing.tRCD),
                        ));
                    }
                }
                if let Some(&(last, bank)) = rank_cols.get(&record.rank) {
                    let gap = if bank / banks_per_group == record.bank / banks_per_group {
                        timing.tCCD_L
                    } else {
                        timing.tCCD_S
                    };
                    if record.cycle < last + gap {
                        violations.push(violation(
                            "tCCD",
                            index,
                            format!("{} < {} + {gap}", record.cycle, last),
                        ));
                    }
                }
                rank_cols.insert(record.rank, (record.cycle, record.bank));
                if record.kind == CommandKind::Rd {
                    state.last_rd = Some(record.cycle);
                } else {
                    state.last_wr = Some(record.cycle);
                }
            }
            CommandKind::Ref => {
                rank_ref.insert(record.rank, record.cycle);
                // Refresh implies precharge-all: every open bank of the rank
                // must be precharge-legal, and closes.
                for ((rank, _), bank_state) in banks.iter_mut() {
                    if *rank != record.rank || bank_state.open_row.is_none() {
                        continue;
                    }
                    if let Some(last) = bank_state.last_act {
                        if record.cycle < last + timing.tRAS {
                            violations.push(TimingViolation {
                                parameter: "tRAS",
                                record_index: index,
                                detail: format!(
                                    "REF at {} closes a row activated at {last}",
                                    record.cycle
                                ),
                            });
                        }
                    }
                    bank_state.open_row = None;
                    bank_state.last_pre = Some(record.cycle);
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::ddr4_2400()
    }

    fn record(cycle: Cycle, kind: CommandKind, bank: usize, row: usize) -> CommandRecord {
        CommandRecord { cycle, kind, rank: 0, bank, row }
    }

    #[test]
    fn legal_sequence_passes() {
        let t = timing();
        let mut log = CommandLog::new();
        log.push(record(0, CommandKind::Act, 0, 5));
        log.push(record(t.tRCD, CommandKind::Rd, 0, 5));
        log.push(record(t.tRCD + t.tRTP.max(t.tRAS - t.tRCD), CommandKind::Pre, 0, 0));
        assert!(verify_log(&log, &t, 4).is_empty());
    }

    #[test]
    fn early_read_violates_trcd() {
        let t = timing();
        let mut log = CommandLog::new();
        log.push(record(0, CommandKind::Act, 0, 5));
        log.push(record(t.tRCD - 1, CommandKind::Rd, 0, 5));
        let violations = verify_log(&log, &t, 4);
        assert!(violations.iter().any(|v| v.parameter == "tRCD"), "{violations:?}");
    }

    #[test]
    fn early_precharge_violates_tras() {
        let t = timing();
        let mut log = CommandLog::new();
        log.push(record(0, CommandKind::Act, 0, 5));
        log.push(record(t.tRAS - 1, CommandKind::Pre, 0, 0));
        assert!(verify_log(&log, &t, 4).iter().any(|v| v.parameter == "tRAS"));
    }

    #[test]
    fn five_fast_activations_violate_tfaw() {
        let t = timing();
        let mut log = CommandLog::new();
        for (i, at) in [0, 4, 8, 12, 16].into_iter().enumerate() {
            // Alternate bank groups so tRRD_S paces them.
            log.push(record(at, CommandKind::Act, i * 4 % 16, 1));
        }
        assert!(verify_log(&log, &t, 4).iter().any(|v| v.parameter == "tFAW"));
    }

    #[test]
    fn column_to_closed_bank_is_an_ordering_violation() {
        let t = timing();
        let mut log = CommandLog::new();
        log.push(record(100, CommandKind::Rd, 0, 0));
        assert!(verify_log(&log, &t, 4).iter().any(|v| v.parameter == "ordering"));
    }

    #[test]
    fn command_inside_refresh_blackout_is_flagged() {
        let t = timing();
        let mut log = CommandLog::new();
        log.push(CommandRecord { cycle: 0, kind: CommandKind::Ref, rank: 0, bank: 0, row: 0 });
        log.push(record(t.tRFC - 1, CommandKind::Act, 0, 1));
        assert!(verify_log(&log, &t, 4).iter().any(|v| v.parameter == "tRFC"));
    }

    #[test]
    fn display_names_the_parameter() {
        let violation =
            TimingViolation { parameter: "tRCD", record_index: 3, detail: "early".into() };
        assert_eq!(violation.to_string(), "tRCD violated at record 3: early");
    }
}
