//! Per-bank state machine: row buffer and bank-local timing constraints.

use serde::{Deserialize, Serialize};

use crate::config::Timing;
use crate::Cycle;

/// State of one DRAM bank's row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BankState {
    /// No row open; an ACT is required before column access.
    Idle,
    /// The given row is latched in the row buffer.
    Active(usize),
}

/// How a burst to a given row relates to the bank's current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowOutcome {
    /// Target row already open: column access only.
    Hit,
    /// Bank idle: ACT then column access.
    Miss,
    /// Different row open: PRE, ACT, then column access.
    Conflict,
}

/// One DRAM bank: row-buffer state plus the earliest cycles at which each
/// command class may legally issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bank {
    state: BankState,
    /// Earliest cycle a new ACT may issue (tRC / tRP driven).
    next_act: Cycle,
    /// Earliest cycle a PRE may issue (tRAS / tRTP / tWR driven).
    next_pre: Cycle,
    /// Earliest cycle a RD/WR may issue (tRCD driven).
    next_column: Cycle,
}

impl Bank {
    /// A bank with no open row and no pending constraints.
    #[must_use]
    pub fn new() -> Self {
        Self { state: BankState::Idle, next_act: 0, next_pre: 0, next_column: 0 }
    }

    /// Current row-buffer state.
    #[must_use]
    pub fn state(&self) -> BankState {
        self.state
    }

    /// Classifies an access to `row` against the current row buffer.
    #[must_use]
    pub fn outcome_for(&self, row: usize) -> RowOutcome {
        match self.state {
            BankState::Active(open) if open == row => RowOutcome::Hit,
            BankState::Active(_) => RowOutcome::Conflict,
            BankState::Idle => RowOutcome::Miss,
        }
    }

    /// Earliest cycle (≥ `now`) an ACT may issue.
    #[must_use]
    pub fn act_ready(&self, now: Cycle) -> Cycle {
        self.next_act.max(now)
    }

    /// Earliest cycle (≥ `now`) a PRE may issue.
    #[must_use]
    pub fn pre_ready(&self, now: Cycle) -> Cycle {
        self.next_pre.max(now)
    }

    /// Earliest cycle (≥ `now`) a RD/WR may issue (requires an open row).
    #[must_use]
    pub fn column_ready(&self, now: Cycle) -> Cycle {
        self.next_column.max(now)
    }

    /// Issues an ACT for `row` at `at`.
    ///
    /// # Panics
    ///
    /// Debug-panics if the bank is not idle or `at` violates tRC.
    pub fn activate(&mut self, at: Cycle, row: usize, timing: &Timing) {
        debug_assert_eq!(self.state, BankState::Idle, "ACT on non-idle bank");
        debug_assert!(at >= self.next_act, "ACT violates tRC/tRP");
        self.state = BankState::Active(row);
        self.next_column = at + timing.tRCD;
        self.next_pre = at + timing.tRAS;
        self.next_act = at + timing.tRC;
    }

    /// Issues a PRE at `at`, closing the open row.
    ///
    /// # Panics
    ///
    /// Debug-panics if `at` violates tRAS/tRTP/tWR.
    pub fn precharge(&mut self, at: Cycle, timing: &Timing) {
        debug_assert!(at >= self.next_pre, "PRE violates tRAS/tRTP/tWR");
        self.state = BankState::Idle;
        self.next_act = self.next_act.max(at + timing.tRP);
    }

    /// Closes the row unconditionally as part of a refresh cycle (the
    /// precharge cost is folded into tRFC, which the controller enforces).
    pub fn force_precharge(&mut self, at: Cycle) {
        self.state = BankState::Idle;
        self.next_act = self.next_act.max(at);
    }

    /// Issues a RD at `at`. Returns the cycle the last data beat leaves the
    /// device (`at + tCL + tBL`).
    ///
    /// # Panics
    ///
    /// Debug-panics if no row is open or `at` violates tRCD.
    pub fn read(&mut self, at: Cycle, timing: &Timing) -> Cycle {
        debug_assert!(matches!(self.state, BankState::Active(_)), "RD on idle bank");
        debug_assert!(at >= self.next_column, "RD violates tRCD");
        // A later PRE must respect read-to-precharge.
        self.next_pre = self.next_pre.max(at + timing.tRTP);
        at + timing.tCL + timing.tBL
    }

    /// Issues a WR at `at`. Returns the cycle the last data beat is written
    /// (`at + tCWL + tBL`).
    ///
    /// # Panics
    ///
    /// Debug-panics if no row is open or `at` violates tRCD.
    pub fn write(&mut self, at: Cycle, timing: &Timing) -> Cycle {
        debug_assert!(matches!(self.state, BankState::Active(_)), "WR on idle bank");
        debug_assert!(at >= self.next_column, "WR violates tRCD");
        let data_end = at + timing.tCWL + timing.tBL;
        self.next_pre = self.next_pre.max(data_end + timing.tWR);
        data_end
    }
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::ddr4_2400()
    }

    #[test]
    fn fresh_bank_is_idle_and_unconstrained() {
        let bank = Bank::new();
        assert_eq!(bank.state(), BankState::Idle);
        assert_eq!(bank.act_ready(0), 0);
        assert_eq!(bank.outcome_for(42), RowOutcome::Miss);
    }

    #[test]
    fn activate_opens_row_and_blocks_columns_for_trcd() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(10, 7, &t);
        assert_eq!(bank.state(), BankState::Active(7));
        assert_eq!(bank.outcome_for(7), RowOutcome::Hit);
        assert_eq!(bank.outcome_for(8), RowOutcome::Conflict);
        assert_eq!(bank.column_ready(0), 10 + t.tRCD);
        assert_eq!(bank.pre_ready(0), 10 + t.tRAS);
        assert_eq!(bank.act_ready(0), 10 + t.tRC);
    }

    #[test]
    fn read_returns_data_completion_cycle() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(0, 0, &t);
        let issue = bank.column_ready(0);
        let done = bank.read(issue, &t);
        assert_eq!(done, t.tRCD + t.tCL + t.tBL);
    }

    #[test]
    fn write_pushes_precharge_past_twr() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(0, 0, &t);
        let issue = bank.column_ready(0);
        let data_end = bank.write(issue, &t);
        assert_eq!(data_end, t.tRCD + t.tCWL + t.tBL);
        assert_eq!(bank.pre_ready(0), data_end + t.tWR);
    }

    #[test]
    fn precharge_closes_row_and_enforces_trp() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(0, 3, &t);
        let pre_at = bank.pre_ready(0);
        bank.precharge(pre_at, &t);
        assert_eq!(bank.state(), BankState::Idle);
        // Next ACT respects both tRC from the old ACT and tRP from the PRE.
        assert_eq!(bank.act_ready(0), t.tRC.max(pre_at + t.tRP));
    }

    #[test]
    fn force_precharge_closes_row_immediately() {
        let mut bank = Bank::new();
        bank.activate(0, 3, &timing());
        bank.force_precharge(5);
        assert_eq!(bank.state(), BankState::Idle);
    }

    #[test]
    fn back_to_back_activates_respect_trc() {
        let t = timing();
        let mut bank = Bank::new();
        bank.activate(0, 1, &t);
        bank.precharge(bank.pre_ready(0), &t);
        let second_act = bank.act_ready(0);
        assert!(second_act >= t.tRC);
        bank.activate(second_act, 2, &t);
        assert_eq!(bank.state(), BankState::Active(2));
    }
}
