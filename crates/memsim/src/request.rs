//! Memory requests and completions.

use serde::{Deserialize, Serialize};

use crate::address::PhysAddr;
use crate::Cycle;

/// Identifier assigned to each submitted [`Request`], unique per
/// [`crate::MemorySystem`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Whether a request reads or writes memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A DRAM read (RD commands).
    Read,
    /// A DRAM write (WR commands).
    Write,
}

/// A memory access covering one or more 64-byte bursts starting at `addr`.
///
/// Multi-burst requests model whole-embedding-vector reads: a 512 B vector
/// is one request that the controller expands into 8 consecutive column
/// accesses, completing when the final data beat returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Request {
    /// Starting physical address.
    pub addr: PhysAddr,
    /// Bytes to transfer. Rounded up to a whole number of bursts; a zero
    /// value still costs one burst (DRAM cannot transfer less).
    pub bytes: usize,
    /// Read or write.
    pub kind: AccessKind,
    /// Earliest cycle at which the controller may start serving the request.
    pub arrival: Cycle,
}

impl Request {
    /// A read of `bytes` starting at `addr`, arriving at cycle 0.
    #[must_use]
    pub fn read(addr: u64, bytes: usize) -> Self {
        Self { addr: PhysAddr(addr), bytes, kind: AccessKind::Read, arrival: 0 }
    }

    /// A write of `bytes` starting at `addr`, arriving at cycle 0.
    #[must_use]
    pub fn write(addr: u64, bytes: usize) -> Self {
        Self { addr: PhysAddr(addr), bytes, kind: AccessKind::Write, arrival: 0 }
    }

    /// Returns the same request arriving at `cycle`.
    #[must_use]
    pub fn at(mut self, cycle: Cycle) -> Self {
        self.arrival = cycle;
        self
    }

    /// The number of 64-byte-class bursts this request occupies given a
    /// burst size.
    #[must_use]
    pub fn bursts(&self, burst_bytes: usize) -> usize {
        self.bytes.div_ceil(burst_bytes).max(1)
    }
}

/// Result of a finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Completion {
    /// The request this completion belongs to.
    pub id: RequestId,
    /// Cycle when the final data beat crossed the channel bus.
    pub finish_cycle: Cycle,
    /// Cycle when the first command for this request was issued.
    pub start_cycle: Cycle,
    /// Bursts that hit an already-open row.
    pub row_hits: u32,
    /// Bursts that required activating a closed row.
    pub row_misses: u32,
    /// Bursts that had to close a different open row first.
    pub row_conflicts: u32,
}

impl Completion {
    /// Total queuing + service latency in cycles, measured from the
    /// request's arrival.
    #[must_use]
    pub fn latency(&self, arrival: Cycle) -> Cycle {
        self.finish_cycle.saturating_sub(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_constructor_sets_fields() {
        let req = Request::read(0x1000, 512);
        assert_eq!(req.addr, PhysAddr(0x1000));
        assert_eq!(req.bytes, 512);
        assert_eq!(req.kind, AccessKind::Read);
        assert_eq!(req.arrival, 0);
    }

    #[test]
    fn at_sets_arrival() {
        let req = Request::write(0, 64).at(100);
        assert_eq!(req.arrival, 100);
        assert_eq!(req.kind, AccessKind::Write);
    }

    #[test]
    fn bursts_round_up_and_floor_at_one() {
        assert_eq!(Request::read(0, 512).bursts(64), 8);
        assert_eq!(Request::read(0, 65).bursts(64), 2);
        assert_eq!(Request::read(0, 16).bursts(64), 1);
        assert_eq!(Request::read(0, 0).bursts(64), 1);
    }

    #[test]
    fn completion_latency_measures_from_arrival() {
        let completion = Completion {
            id: RequestId(0),
            finish_cycle: 120,
            start_cycle: 40,
            row_hits: 7,
            row_misses: 1,
            row_conflicts: 0,
        };
        assert_eq!(completion.latency(20), 100);
        assert_eq!(completion.latency(200), 0);
    }
}
