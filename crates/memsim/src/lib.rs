//! # fafnir-mem — a cycle-level DDR4 memory-system simulator
//!
//! This crate is the memory substrate of the FAFNIR reproduction. FAFNIR
//! (HPCA 2021) is a near-data-processing accelerator whose performance story
//! rests on three DRAM-level effects:
//!
//! 1. **Row-buffer locality** — reading a whole 512 B embedding vector from
//!    one rank streams eight bursts out of a single open row, whereas
//!    splitting the vector across ranks (TensorDIMM-style, column-major)
//!    forces a fresh row activation per small read.
//! 2. **Rank-level parallelism** — distinct vectors living on distinct ranks
//!    can be gathered concurrently, limited only by the shared channel data
//!    bus.
//! 3. **Access counts** — FAFNIR's batch dedup removes whole DRAM reads; the
//!    simulator counts activations, reads and energy so those savings are
//!    measurable.
//!
//! The simulator models a DDR4 system as `channels × DIMMs × ranks ×
//! bank groups × banks`, with a per-channel FR-FCFS controller, an
//! open-or-closed page policy, command-level timing (tRCD/tRP/tCL/tCCD/tRRD/
//! tFAW/…) and a shared data bus per channel. It is event-accurate at command
//! granularity: every ACT/PRE/RD/WR is issued on a specific memory-clock
//! cycle and all JEDEC-style constraints between commands are enforced.
//!
//! ## Quick example
//!
//! ```
//! use fafnir_mem::{MemoryConfig, MemorySystem, Request, AccessKind};
//!
//! let config = MemoryConfig::ddr4_2400_4ch();
//! let mut mem = MemorySystem::new(config);
//! // Read one 512-byte embedding vector at address 0x4000.
//! let id = mem.submit(Request::read(0x4000, 512));
//! let done = mem.run_until_idle();
//! let completion = mem.completion(id).expect("request completed");
//! assert!(completion.finish_cycle <= done);
//! assert_eq!(mem.stats().reads, 8); // 512 B = 8 × 64 B bursts
//! # let _ = AccessKind::Read;
//! ```
//!
//! ## Modules
//!
//! * [`config`] — topology and timing parameters with DDR4 presets.
//! * [`address`] — physical-address ↔ device-location mapping schemes.
//! * [`request`] — read/write requests and completions.
//! * [`bank`], [`rank`], [`channel`] — the device state machines.
//! * [`controller`] — the per-channel FR-FCFS scheduler.
//! * [`system`] — the user-facing [`MemorySystem`].
//! * [`model`] — the [`MemoryModel`] trait and the fast-functional
//!   analytic model ([`FastFunctionalMemory`]).
//! * [`stats`], [`energy`] — counters and the DRAM energy model.
//! * [`verify`] — independent JEDEC timing verification of command logs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod bank;
pub mod channel;
pub mod config;
pub mod controller;
pub mod energy;
pub mod model;
pub mod rank;
pub mod request;
pub mod stats;
pub mod system;
pub mod verify;

pub use address::{AddressMapping, Location, PhysAddr};
pub use config::{MemoryConfig, PagePolicy, SchedulerPolicy, Timing, Topology};
pub use energy::EnergyModel;
pub use model::{AnyMemory, FastFunctionalMemory, MemoryModel, MemoryModelKind};
pub use request::{AccessKind, Completion, Request, RequestId};
pub use stats::MemoryStats;
pub use system::MemorySystem;
pub use verify::{verify_log, CommandKind, CommandLog, CommandRecord, TimingViolation};

/// A memory-clock cycle count.
///
/// All latencies and timestamps in this crate are expressed in cycles of the
/// DRAM command clock (e.g. 1200 MHz for DDR4-2400).
pub type Cycle = u64;
