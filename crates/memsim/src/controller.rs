//! Per-channel FR-FCFS memory controller.
//!
//! The controller works at *burst* granularity: the [`crate::MemorySystem`]
//! splits every request into 64-byte bursts and enqueues each burst on the
//! channel that owns it. Each command-clock cycle the controller issues at
//! most one command on the channel command bus, picked FR-FCFS:
//!
//! 1. the oldest burst whose row is already open and whose column command is
//!    legal now (the "first-ready" / row-hit-first part), else
//! 2. the oldest burst whose bank is idle and may be activated, else
//! 3. the oldest burst whose bank holds a conflicting row that may be
//!    precharged.
//!
//! Data beats of reads and writes reserve the shared [`DataBus`], which is
//! what serializes rank-parallel accesses on one channel.
//!
//! Bursts are queued **per bank** (in arrival order), so the FR-FCFS scan is
//! O(banks-with-work) per cycle rather than O(window): row-hit candidates are
//! found by checking each active bank's open row against its own queue, and
//! ACT/PRE candidates are always queue fronts. The bounded transaction window
//! ([`SCHED_WINDOW`]) is preserved by computing the window's limiting
//! sequence number — the `SCHED_WINDOW`-th oldest queued burst — and hiding
//! anything younger from the scan, which is exactly the set the previous
//! single-queue `take(SCHED_WINDOW)` scan considered.
//!
//! The controller also knows how to report the earliest future cycle at
//! which *anything* observable could happen ([`ChannelController::
//! next_event_cycle`]), which is what lets [`crate::MemorySystem`]
//! fast-forward the clock over idle gaps without changing a single issue
//! cycle (see DESIGN.md, "Time advance").
//!
//! Simplifications (documented in DESIGN.md): under the closed-page policy
//! the precharge after the last burst to a row does not consume a
//! command-bus slot.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::address::Location;
use crate::bank::RowOutcome;
use crate::channel::DataBus;
use crate::config::{MemoryConfig, PagePolicy, SchedulerPolicy};
use crate::rank::Rank;
use crate::request::{AccessKind, RequestId};
use crate::stats::MemoryStats;
use crate::verify::{CommandKind, CommandLog, CommandRecord};
use crate::Cycle;

/// One 64-byte burst of a request, as queued at a channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstJob {
    /// Owning request.
    pub id: RequestId,
    /// Index of this burst within the request.
    pub burst_index: u32,
    /// Decoded target coordinates.
    pub location: Location,
    /// Read or write.
    pub kind: AccessKind,
    /// Earliest cycle this burst may be served.
    pub arrival: Cycle,
    /// Global submission order, used for FCFS tie-breaking.
    pub seq: u64,
}

/// Outcome of one completed burst, reported back to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BurstResult {
    /// Owning request.
    pub id: RequestId,
    /// Index of this burst within the request.
    pub burst_index: u32,
    /// Cycle the column command issued.
    pub issue_cycle: Cycle,
    /// Cycle the last data beat crossed the bus.
    pub finish_cycle: Cycle,
    /// How the burst met the row buffer.
    pub outcome: RowOutcome,
}

/// Book-keeping flags for a queued burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct BurstProgress {
    issued_pre: bool,
    issued_act: bool,
}

/// Scheduling-window size: only the oldest `SCHED_WINDOW` queued bursts are
/// considered for issue each cycle, like a real controller's bounded
/// transaction queue. Keeps per-cycle work O(window) for large backlogs.
pub const SCHED_WINDOW: usize = 48;

/// FR-FCFS controller for one channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelController {
    config: MemoryConfig,
    ranks: Vec<Rank>,
    /// Shared channel bus (one entry), or one bus per rank when the
    /// configuration enables the NDP data path.
    buses: Vec<DataBus>,
    /// Per-bank burst queues in submission (seq) order, indexed
    /// `rank * banks_per_rank + flat_bank`. Deques because the scheduler
    /// overwhelmingly removes at or near the front (sequential bursts of
    /// one read are same-row hits issued in seq order).
    bank_queues: Vec<VecDeque<(BurstJob, BurstProgress)>>,
    /// Indices of non-empty entries in `bank_queues` (unordered).
    busy_banks: Vec<usize>,
    /// Total queued bursts across all banks.
    queued: usize,
    /// Every queued burst's `(seq, bank queue index)`, seq-ascending.
    /// Appends go to the back (submission order is global seq order) and
    /// the scheduler only ever removes bursts inside the window — the
    /// `SCHED_WINDOW` smallest — so maintenance is O(window), the window's
    /// limiting seq is O(1), and the set of banks the scheduler needs to
    /// scan at all is the (typically small) set of banks holding window
    /// bursts rather than every busy bank.
    window_seqs: VecDeque<(u64, u32)>,
    /// Distinct bank queues currently holding at least one window burst
    /// (unordered — every scheduler selection is a min over unique seqs or
    /// cycles, so scan order is irrelevant). Maintained incrementally from
    /// `window_bank_count` on enqueue/removal instead of being rebuilt by
    /// deduplicating the window every cycle.
    window_banks: Vec<u32>,
    /// Per bank queue: its index in `window_banks`, or `u32::MAX`.
    window_bank_pos: Vec<u32>,
    /// Per bank queue: number of its bursts inside the scheduling window.
    window_bank_count: Vec<u32>,
    /// Banks per rank, cached for queue indexing.
    banks_per_rank: usize,
    stats: MemoryStats,
    /// Per-rank cycle of the next due refresh (staggered across ranks).
    next_refresh: Vec<Cycle>,
    /// Per-rank cycle until which the rank is blocked by a refresh.
    refresh_until: Vec<Cycle>,
    /// Optional command log for independent timing verification.
    log: Option<CommandLog>,
    /// This controller's channel index (for fault injection).
    channel: usize,
}

impl ChannelController {
    /// A controller for one channel of `config`, all banks idle; channel
    /// index 0 (see [`ChannelController::with_channel`]).
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        Self::with_channel(config, 0)
    }

    /// A controller knowing its channel index (needed for per-rank fault
    /// injection).
    #[must_use]
    pub fn with_channel(config: MemoryConfig, channel: usize) -> Self {
        let ranks: Vec<Rank> =
            (0..config.topology.ranks_per_channel()).map(|_| Rank::new(&config.topology)).collect();
        let bus_count = if config.ndp_data_path { ranks.len() } else { 1 };
        let rank_count = ranks.len();
        let banks_per_rank = config.topology.banks_per_rank();
        // Stagger refreshes so ranks do not all block at once.
        let next_refresh = (0..rank_count)
            .map(|r| (r as Cycle + 1) * config.timing.tREFI / rank_count.max(1) as Cycle)
            .collect();
        Self {
            config,
            ranks,
            buses: vec![DataBus::new(); bus_count],
            bank_queues: vec![VecDeque::new(); rank_count * banks_per_rank],
            busy_banks: Vec::new(),
            queued: 0,
            window_seqs: VecDeque::new(),
            window_banks: Vec::new(),
            window_bank_pos: vec![u32::MAX; rank_count * banks_per_rank],
            window_bank_count: vec![0; rank_count * banks_per_rank],
            banks_per_rank,
            stats: MemoryStats::new(),
            next_refresh,
            refresh_until: vec![0; rank_count],
            log: None,
            channel,
        }
    }

    /// Extra read cycles if `rank` is the configured straggler.
    fn straggler_penalty(&self, rank: usize) -> u64 {
        match self.config.straggler {
            Some((channel, straggler_rank, penalty))
                if channel == self.channel && straggler_rank == rank =>
            {
                penalty
            }
            _ => 0,
        }
    }

    /// Starts recording every issued command (see [`crate::verify`]).
    pub fn enable_command_log(&mut self) {
        self.log = Some(CommandLog::new());
    }

    /// Takes the recorded log, leaving logging enabled with a fresh log.
    pub fn take_command_log(&mut self) -> Option<CommandLog> {
        self.log.replace(CommandLog::new())
    }

    /// Records a command if logging is enabled.
    fn record(&mut self, cycle: Cycle, kind: CommandKind, rank: usize, bank: usize, row: usize) {
        if let Some(log) = &mut self.log {
            log.push(CommandRecord { cycle, kind, rank, bank, row });
        }
    }

    /// Index of the data bus serving `rank`.
    fn bus_index(&self, rank: usize) -> usize {
        if self.config.ndp_data_path {
            rank
        } else {
            0
        }
    }

    /// Index into `bank_queues` for (`rank`, `flat_bank`).
    fn queue_index(&self, rank: usize, flat_bank: usize) -> usize {
        rank * self.banks_per_rank + flat_bank
    }

    /// Adds a burst to its bank's queue. Bursts must be enqueued in
    /// increasing `seq` order (the system's global submission order).
    pub fn enqueue(&mut self, job: BurstJob) {
        let qi = self.queue_index(job.location.rank, job.location.flat_bank(&self.config.topology));
        debug_assert!(
            self.bank_queues[qi].back().is_none_or(|(last, _)| last.seq < job.seq),
            "bursts must arrive in seq order"
        );
        if self.bank_queues[qi].is_empty() {
            self.busy_banks.push(qi);
        }
        debug_assert!(self.window_seqs.back().is_none_or(|&(last, _)| last < job.seq));
        self.window_seqs.push_back((job.seq, qi as u32));
        if self.window_seqs.len() <= SCHED_WINDOW {
            self.window_bank_add(qi as u32);
        }
        self.bank_queues[qi].push_back((job, BurstProgress::default()));
        self.queued += 1;
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queued as u64);
    }

    /// Removes the burst at `pos` of bank queue `qi`, maintaining the busy
    /// set and total count.
    fn remove_job(&mut self, qi: usize, pos: usize) -> (BurstJob, BurstProgress) {
        let entry = self.bank_queues[qi].remove(pos).expect("position in bounds");
        // The scheduler only issues seqs at or below the window limit, i.e.
        // among the SCHED_WINDOW globally oldest — a bounded front scan.
        let seq_at = self
            .window_seqs
            .iter()
            .take(SCHED_WINDOW)
            .position(|&(seq, _)| seq == entry.0.seq)
            .expect("queued burst tracked in window_seqs");
        self.window_seqs.remove(seq_at);
        self.window_bank_remove(qi as u32);
        if self.window_seqs.len() >= SCHED_WINDOW {
            let (_, slid_in) = self.window_seqs[SCHED_WINDOW - 1];
            self.window_bank_add(slid_in);
        }
        self.queued -= 1;
        if self.bank_queues[qi].is_empty() {
            let at = self.busy_banks.iter().position(|&b| b == qi).expect("busy bank tracked");
            self.busy_banks.swap_remove(at);
        }
        entry
    }

    /// True when no bursts are waiting.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queued == 0
    }

    /// Number of queued bursts.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queued
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &MemoryStats {
        &self.stats
    }

    /// Zeroes the accumulated counters. Callers are responsible for only
    /// doing this on an idle controller — see
    /// [`crate::MemorySystem::reset_stats`] for the checked phase-boundary
    /// entry point.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Data-bus occupancy trackers (one, or one per rank under the NDP data
    /// path).
    #[must_use]
    pub fn buses(&self) -> &[DataBus] {
        &self.buses
    }

    /// The largest `seq` inside the scheduling window: bursts younger than
    /// this are invisible to the scheduler this cycle.
    ///
    /// The window holds the `SCHED_WINDOW` globally-oldest queued bursts,
    /// which is exactly the `SCHED_WINDOW`-th entry of the sorted
    /// `window_seqs` deque — O(1) per cycle instead of the k-way merge
    /// over bank-queue fronts this used to rebuild every scan.
    fn window_limit_seq(&self) -> u64 {
        if self.queued <= SCHED_WINDOW {
            return u64::MAX;
        }
        self.window_seqs[SCHED_WINDOW - 1].0
    }

    /// Counts one more window burst for bank queue `qi`, adding it to the
    /// scan list on its first. Only banks in that list can legally issue
    /// anything: every issue rule requires `seq <= window_limit_seq()`, and
    /// a bank whose oldest burst is outside the window has no such burst.
    /// Bursts of one read cluster in one bank, so the list is typically far
    /// smaller than the busy-bank set.
    fn window_bank_add(&mut self, qi: u32) {
        let count = &mut self.window_bank_count[qi as usize];
        *count += 1;
        if *count == 1 {
            self.window_bank_pos[qi as usize] = self.window_banks.len() as u32;
            self.window_banks.push(qi);
        }
    }

    /// Counts one window burst gone from bank queue `qi`, dropping it from
    /// the scan list on its last.
    fn window_bank_remove(&mut self, qi: u32) {
        let count = &mut self.window_bank_count[qi as usize];
        *count -= 1;
        if *count == 0 {
            let pos = self.window_bank_pos[qi as usize] as usize;
            self.window_bank_pos[qi as usize] = u32::MAX;
            self.window_banks.swap_remove(pos);
            if let Some(&moved) = self.window_banks.get(pos) {
                self.window_bank_pos[moved as usize] = pos as u32;
            }
        }
    }

    /// Under strict FCFS only the oldest *arrived* burst may issue; returns
    /// its seq (None means no restriction / nothing arrived).
    fn fcfs_only_seq(&self, now: Cycle) -> Option<u64> {
        if self.config.scheduler != SchedulerPolicy::Fcfs {
            return None;
        }
        let mut best: Option<u64> = None;
        for &qi in &self.busy_banks {
            for (job, _) in &self.bank_queues[qi] {
                if best.is_some_and(|b| job.seq >= b) {
                    break; // seq-sorted: nothing older further in
                }
                if job.arrival <= now {
                    best = Some(job.seq);
                    break;
                }
            }
        }
        best
    }

    /// Advances one command-clock cycle, issuing at most one command.
    ///
    /// Completed bursts are appended to `out` (their `finish_cycle` may lie
    /// in the future relative to `now`; the data is in flight).
    pub fn tick(&mut self, now: Cycle, out: &mut Vec<BurstResult>) {
        if self.config.refresh {
            self.service_refreshes(now);
        }
        if let PagePolicy::Adaptive { timeout } = self.config.page_policy {
            self.service_adaptive_closes(now, timeout);
        }
        // The scheduling window and FCFS head are functions of the queue
        // contents only, which no failed issue attempt mutates — compute
        // them once per cycle instead of once per attempted command class.
        let limit = self.window_limit_seq();
        let fcfs_only = self.fcfs_only_seq(now);
        if self.try_issue_column(now, limit, fcfs_only, out) {
            return;
        }
        if self.try_issue_act(now, limit, fcfs_only) {
            return;
        }
        let _ = self.try_issue_pre(now, limit, fcfs_only);
    }

    /// Drains this controller's queue to empty on a private clock starting
    /// at `start`, fast-forwarding over dead cycles exactly like
    /// [`crate::MemorySystem::run_until_idle`]. Returns the local cycle
    /// after the last command issued plus the cycles skipped.
    ///
    /// Only valid while channels are decoupled: with periodic refresh off
    /// and a non-adaptive page policy, every issue decision is a function
    /// of this controller's own state and the cycle number, so draining
    /// channels one at a time issues every command on exactly the same
    /// cycle as the global lockstep driver (the parity suite pins this).
    pub fn drain(&mut self, start: Cycle, out: &mut Vec<BurstResult>) -> (Cycle, u64) {
        debug_assert!(
            !self.config.refresh && !matches!(self.config.page_policy, PagePolicy::Adaptive { .. }),
            "drain requires decoupled channels (no refresh, non-adaptive page policy)"
        );
        let mut now = start;
        let mut skipped = 0;
        while !self.is_idle() {
            self.tick(now, out);
            now += 1;
            // Jump over dead cycles after *every* tick (the lockstep driver
            // only jumps after a globally-empty one): cycles before the next
            // event bound are provably no-ops, issued command or not.
            if let Some(next) = self.next_event_cycle(now) {
                if next > now {
                    skipped += next - now;
                    now = next;
                }
            }
        }
        (now, skipped)
    }

    /// Fires any due refresh: close the rank's banks and block it for tRFC.
    ///
    /// A refresh is deferred while any open row cannot legally precharge
    /// yet (tRAS/tRTP/tWR), exactly as a real controller holds REF behind
    /// the precharge-all.
    fn service_refreshes(&mut self, now: Cycle) {
        let timing = self.config.timing;
        for rank_index in 0..self.ranks.len() {
            if now >= self.next_refresh[rank_index] && now >= self.refresh_until[rank_index] {
                let all_precharge_ready = (0..self.ranks[rank_index].bank_count()).all(|bank| {
                    let bank = self.ranks[rank_index].bank(bank);
                    matches!(bank.state(), crate::bank::BankState::Idle)
                        || bank.pre_ready(now) <= now
                });
                if !all_precharge_ready {
                    continue;
                }
                let rank = &mut self.ranks[rank_index];
                for bank in 0..rank.bank_count() {
                    rank.bank_mut(bank).force_precharge(now);
                }
                self.refresh_until[rank_index] = now + timing.tRFC;
                // Allow drift instead of cascading catch-up refreshes.
                self.next_refresh[rank_index] = now + timing.tREFI;
                self.record(now, CommandKind::Ref, rank_index, 0, 0);
                self.stats.refreshes += 1;
            }
        }
    }

    /// Speculatively closes rows idle past the adaptive timeout with no
    /// queued access (free of command-bus cost, like the closed-page
    /// auto-precharge — see the module docs).
    fn service_adaptive_closes(&mut self, now: Cycle, timeout: u64) {
        let timing = self.config.timing;
        for rank_index in 0..self.ranks.len() {
            for flat in 0..self.ranks[rank_index].bank_count() {
                let bank = self.ranks[rank_index].bank(flat);
                let crate::bank::BankState::Active(open_row) = bank.state() else { continue };
                // Idle long enough? pre_ready is the last activity horizon.
                if now < bank.pre_ready(0).saturating_add(timeout) {
                    continue;
                }
                let qi = self.queue_index(rank_index, flat);
                let wanted =
                    self.bank_queues[qi].iter().any(|(job, _)| job.location.row == open_row);
                if wanted {
                    continue;
                }
                let at = self.ranks[rank_index].bank(flat).pre_ready(now);
                self.record(at, CommandKind::Pre, rank_index, flat, 0);
                self.ranks[rank_index].bank_mut(flat).precharge(at, &timing);
                self.stats.precharges += 1;
            }
        }
    }

    /// True when `rank` is currently blocked by a refresh.
    fn rank_refreshing(&self, rank: usize, now: Cycle) -> bool {
        self.config.refresh && now < self.refresh_until[rank]
    }

    /// The earliest cycle `>= now` at which this controller could do
    /// anything observable: issue a command for a queued burst, fire a
    /// refresh, or speculatively close a row under the adaptive policy.
    ///
    /// Used by [`crate::MemorySystem::run_until_idle`] to fast-forward the
    /// clock over dead cycles. The bound is *conservative-early* (the
    /// controller may land and still find nothing legal, e.g. under FCFS
    /// ordering or command-bus contention, and jump again) but never late:
    /// every term is exact while device state is static, and any state
    /// change before the reported cycle is itself an earlier event. See
    /// DESIGN.md, "Time advance".
    #[must_use]
    pub fn next_event_cycle(&self, now: Cycle) -> Option<Cycle> {
        let timing = self.config.timing;
        let mut best = Cycle::MAX;
        // (1) Queued bursts inside the scheduling window. Row hits can issue
        // from any queue position (FR-FCFS bypass); ACT/PRE only ever go to
        // the head of a bank queue, so a blocked non-head burst's progress
        // is bounded by its head's event and needs no term of its own.
        let limit = self.window_limit_seq();
        for &qi in &self.window_banks {
            let qi = qi as usize;
            let rank_index = qi / self.banks_per_rank;
            let flat = qi % self.banks_per_rank;
            let rank = &self.ranks[rank_index];
            let bank = rank.bank(flat);
            let refresh_floor =
                if self.config.refresh { self.refresh_until[rank_index] } else { 0 };
            match bank.state() {
                // Idle bank: every queued row is a miss, and ACT only ever
                // goes to the queue head.
                crate::bank::BankState::Idle => {
                    let job = &self.bank_queues[qi][0].0;
                    if job.seq > limit {
                        continue;
                    }
                    let device_ready = bank.act_ready(now).max(rank.act_ready(now, flat, &timing));
                    best = best.min(device_ready.max(job.arrival).max(refresh_floor).max(now));
                }
                // Open row: hits may issue from any position (FR-FCFS
                // bypass); a conflicting head is bounded by its precharge.
                // Device and bus readiness are per-bank constants, hoisted
                // out of the position scan. The column command must issue
                // exactly tCL/tCWL before its data phase can start on the
                // bus, so an existing bus reservation bounds the issue
                // cycle.
                crate::bank::BankState::Active(open_row) => {
                    let hit_base = bank
                        .column_ready(now)
                        .max(rank.column_ready(now, flat, &timing))
                        .max(refresh_floor)
                        .max(now);
                    let bus_start =
                        self.buses[self.bus_index(rank_index)].earliest_start(rank_index, &timing);
                    let floor_read = bus_start.saturating_sub(timing.tCL);
                    let floor_write = bus_start.saturating_sub(timing.tCWL);
                    // The earliest any hit in this bank could issue,
                    // regardless of kind or arrival.
                    let min_base = hit_base.max(floor_read.min(floor_write));
                    for (pos, (job, _)) in self.bank_queues[qi].iter().enumerate() {
                        if job.seq > limit {
                            break;
                        }
                        if job.location.row == open_row {
                            let base = hit_base.max(match job.kind {
                                AccessKind::Read => floor_read,
                                AccessKind::Write => floor_write,
                            });
                            best = best.min(base.max(job.arrival));
                            if job.arrival <= base && base == min_base {
                                // This hit already issues at the bank's
                                // floor; no later hit here can bound
                                // earlier (only a smaller arrival or a
                                // cheaper kind could, and neither can go
                                // below `min_base`).
                                break;
                            }
                        } else if pos == 0 {
                            let bound =
                                bank.pre_ready(now).max(job.arrival).max(refresh_floor).max(now);
                            best = best.min(bound);
                        }
                    }
                }
            }
        }
        // (2) Refresh fire times: a refresh is observable (Ref record, rank
        // blocked for tRFC) even when no burst is queued, and it is held
        // behind the latest open row's precharge horizon.
        if self.config.refresh {
            for rank_index in 0..self.ranks.len() {
                let rank = &self.ranks[rank_index];
                let mut fire =
                    self.next_refresh[rank_index].max(self.refresh_until[rank_index]).max(now);
                for flat in 0..rank.bank_count() {
                    let bank = rank.bank(flat);
                    if matches!(bank.state(), crate::bank::BankState::Active(_)) {
                        fire = fire.max(bank.pre_ready(now));
                    }
                }
                best = best.min(fire);
            }
        }
        // (3) Adaptive speculative closes of unwanted open rows.
        if let PagePolicy::Adaptive { timeout } = self.config.page_policy {
            for rank_index in 0..self.ranks.len() {
                for flat in 0..self.ranks[rank_index].bank_count() {
                    let bank = self.ranks[rank_index].bank(flat);
                    let crate::bank::BankState::Active(open_row) = bank.state() else { continue };
                    let qi = self.queue_index(rank_index, flat);
                    if self.bank_queues[qi].iter().any(|(job, _)| job.location.row == open_row) {
                        continue;
                    }
                    best = best.min(bank.pre_ready(0).saturating_add(timeout).max(now));
                }
            }
        }
        (best != Cycle::MAX).then_some(best)
    }

    /// Attempts to issue a RD/WR for the oldest ready row-hit burst.
    fn try_issue_column(
        &mut self,
        now: Cycle,
        limit: u64,
        fcfs_only: Option<u64>,
        out: &mut Vec<BurstResult>,
    ) -> bool {
        let timing = self.config.timing;
        let topology = self.config.topology;
        let mut best: Option<(usize, usize, u64)> = None;
        for i in 0..self.window_banks.len() {
            let qi = self.window_banks[i] as usize;
            let rank_index = qi / self.banks_per_rank;
            let flat = qi % self.banks_per_rank;
            if self.rank_refreshing(rank_index, now) {
                continue;
            }
            let rank = &self.ranks[rank_index];
            let bank = rank.bank(flat);
            let crate::bank::BankState::Active(open_row) = bank.state() else { continue };
            if bank.column_ready(now) > now || rank.column_ready(now, flat, &timing) > now {
                continue;
            }
            // The data phase must start exactly when the device produces
            // it; if the bus is busy then, hold the command. Whether it is
            // free at `now + tCL/tCWL` is a per-bank constant, hoisted out
            // of the position scan.
            let bus = &self.buses[self.bus_index(rank_index)];
            let read_ok = bus.ready(now + timing.tCL, rank_index, &timing) == now + timing.tCL;
            let write_ok = bus.ready(now + timing.tCWL, rank_index, &timing) == now + timing.tCWL;
            if !read_ok && !write_ok {
                continue;
            }
            for (pos, (job, _)) in self.bank_queues[qi].iter().enumerate() {
                if job.seq > limit {
                    break;
                }
                if job.arrival > now
                    || job.location.row != open_row
                    || fcfs_only.is_some_and(|only| job.seq != only)
                {
                    continue;
                }
                let bus_free = match job.kind {
                    AccessKind::Read => read_ok,
                    AccessKind::Write => write_ok,
                };
                if !bus_free {
                    continue;
                }
                if best.is_none_or(|(_, _, seq)| job.seq < seq) {
                    best = Some((qi, pos, job.seq));
                }
                break; // later entries in this queue only have larger seqs
            }
        }
        let Some((qi, pos, _)) = best else { return false };
        let (job, progress) = self.remove_job(qi, pos);
        let flat = job.location.flat_bank(&topology);
        let kind = match job.kind {
            AccessKind::Read => CommandKind::Rd,
            AccessKind::Write => CommandKind::Wr,
        };
        self.record(now, kind, job.location.rank, flat, job.location.row);
        let rank = &mut self.ranks[job.location.rank];
        let finish = match job.kind {
            AccessKind::Read => {
                self.stats.reads += 1;
                rank.bank_mut(flat).read(now, &timing)
            }
            AccessKind::Write => {
                self.stats.writes += 1;
                rank.bank_mut(flat).write(now, &timing)
            }
        };
        rank.record_column(now, flat);
        let finish = finish + self.straggler_penalty(job.location.rank);
        let data_start = finish - timing.tBL;
        let bus_index = self.bus_index(job.location.rank);
        self.buses[bus_index].reserve(data_start, timing.tBL, job.location.rank);
        self.stats.bytes_transferred += topology.burst_bytes as u64;
        let outcome = if progress.issued_pre {
            RowOutcome::Conflict
        } else if progress.issued_act {
            RowOutcome::Miss
        } else {
            RowOutcome::Hit
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Miss => self.stats.row_misses += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        self.maybe_auto_precharge(&job, finish);
        out.push(BurstResult {
            id: job.id,
            burst_index: job.burst_index,
            issue_cycle: now,
            finish_cycle: finish,
            outcome,
        });
        true
    }

    /// Attempts to activate the row needed by the oldest head-of-bank burst.
    fn try_issue_act(&mut self, now: Cycle, limit: u64, fcfs_only: Option<u64>) -> bool {
        let timing = self.config.timing;
        let mut best: Option<(usize, u64)> = None;
        for i in 0..self.window_banks.len() {
            let qi = self.window_banks[i] as usize;
            let rank_index = qi / self.banks_per_rank;
            let flat = qi % self.banks_per_rank;
            let (job, _) = &self.bank_queues[qi][0];
            if job.seq > limit
                || job.arrival > now
                || self.rank_refreshing(rank_index, now)
                || fcfs_only.is_some_and(|only| job.seq != only)
            {
                continue;
            }
            let rank = &self.ranks[rank_index];
            let bank = rank.bank(flat);
            if bank.outcome_for(job.location.row) != RowOutcome::Miss {
                continue;
            }
            if bank.act_ready(now) > now || rank.act_ready(now, flat, &timing) > now {
                continue;
            }
            if best.is_none_or(|(_, seq)| job.seq < seq) {
                best = Some((qi, job.seq));
            }
        }
        let Some((qi, _)) = best else { return false };
        let (job, progress) = &mut self.bank_queues[qi][0];
        let flat = job.location.flat_bank(&self.config.topology);
        let row = job.location.row;
        let rank_index = job.location.rank;
        progress.issued_act = true;
        self.record(now, CommandKind::Act, rank_index, flat, row);
        let rank = &mut self.ranks[rank_index];
        rank.bank_mut(flat).activate(now, row, &timing);
        rank.record_act(now, flat);
        self.stats.activations += 1;
        true
    }

    /// Attempts to precharge a bank whose open row blocks its oldest burst.
    fn try_issue_pre(&mut self, now: Cycle, limit: u64, fcfs_only: Option<u64>) -> bool {
        let timing = self.config.timing;
        let mut best: Option<(usize, u64)> = None;
        for i in 0..self.window_banks.len() {
            let qi = self.window_banks[i] as usize;
            let rank_index = qi / self.banks_per_rank;
            let flat = qi % self.banks_per_rank;
            let (job, _) = &self.bank_queues[qi][0];
            if job.seq > limit
                || job.arrival > now
                || self.rank_refreshing(rank_index, now)
                || fcfs_only.is_some_and(|only| job.seq != only)
            {
                continue;
            }
            let rank = &self.ranks[rank_index];
            let bank = rank.bank(flat);
            if bank.outcome_for(job.location.row) != RowOutcome::Conflict {
                continue;
            }
            if bank.pre_ready(now) > now {
                continue;
            }
            if best.is_none_or(|(_, seq)| job.seq < seq) {
                best = Some((qi, job.seq));
            }
        }
        let Some((qi, _)) = best else { return false };
        let (job, progress) = &mut self.bank_queues[qi][0];
        let flat = job.location.flat_bank(&self.config.topology);
        let rank_index = job.location.rank;
        progress.issued_pre = true;
        self.record(now, CommandKind::Pre, rank_index, flat, 0);
        self.ranks[rank_index].bank_mut(flat).precharge(now, &timing);
        self.stats.precharges += 1;
        true
    }

    /// Under the closed-page policy, precharges after the last queued burst
    /// to this row (free of command-bus cost — see module docs).
    fn maybe_auto_precharge(&mut self, job: &BurstJob, data_end: Cycle) {
        if self.config.page_policy != PagePolicy::Closed {
            return;
        }
        let flat = job.location.flat_bank(&self.config.topology);
        let qi = self.queue_index(job.location.rank, flat);
        let more_to_row =
            self.bank_queues[qi].iter().any(|(other, _)| other.location.row == job.location.row);
        if more_to_row {
            return;
        }
        let timing = self.config.timing;
        let rank_index = job.location.rank;
        let bank = self.ranks[rank_index].bank_mut(flat);
        let at = bank.pre_ready(data_end);
        bank.precharge(at, &timing);
        self.record(at, CommandKind::Pre, rank_index, flat, 0);
        self.stats.precharges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::AddressMapping;
    use crate::request::Request;

    fn controller(policy: PagePolicy) -> ChannelController {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.page_policy = policy;
        ChannelController::new(config)
    }

    fn job(seq: u64, location: Location, kind: AccessKind) -> BurstJob {
        BurstJob { id: RequestId(seq), burst_index: 0, location, kind, arrival: 0, seq }
    }

    fn run_to_idle(ctrl: &mut ChannelController) -> Vec<BurstResult> {
        let mut out = Vec::new();
        let mut now = 0;
        while !ctrl.is_idle() {
            ctrl.tick(now, &mut out);
            now += 1;
            assert!(now < 1_000_000, "controller livelock");
        }
        out
    }

    #[test]
    fn single_read_miss_takes_trcd_plus_tcl_plus_tbl() {
        let mut ctrl = controller(PagePolicy::Open);
        let loc = Location { row: 5, ..Location::default() };
        ctrl.enqueue(job(0, loc, AccessKind::Read));
        let results = run_to_idle(&mut ctrl);
        let t = crate::config::Timing::ddr4_2400();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcome, RowOutcome::Miss);
        assert_eq!(results[0].finish_cycle, t.tRCD + t.tCL + t.tBL);
    }

    #[test]
    fn second_read_to_same_row_is_a_hit() {
        let mut ctrl = controller(PagePolicy::Open);
        let loc = Location { row: 5, ..Location::default() };
        ctrl.enqueue(job(0, loc, AccessKind::Read));
        ctrl.enqueue(job(1, Location { column: 1, ..loc }, AccessKind::Read));
        let results = run_to_idle(&mut ctrl);
        assert_eq!(results[1].outcome, RowOutcome::Hit);
        assert_eq!(ctrl.stats().row_hits, 1);
        assert_eq!(ctrl.stats().row_misses, 1);
    }

    #[test]
    fn conflicting_row_forces_precharge() {
        let mut ctrl = controller(PagePolicy::Open);
        let bank = Location::default();
        ctrl.enqueue(job(0, Location { row: 1, ..bank }, AccessKind::Read));
        ctrl.enqueue(job(1, Location { row: 2, ..bank }, AccessKind::Read));
        let results = run_to_idle(&mut ctrl);
        assert_eq!(results[1].outcome, RowOutcome::Conflict);
        assert_eq!(ctrl.stats().precharges, 1);
        assert_eq!(ctrl.stats().activations, 2);
    }

    #[test]
    fn closed_page_precharges_after_last_burst_to_row() {
        let mut ctrl = controller(PagePolicy::Closed);
        let loc = Location { row: 9, ..Location::default() };
        ctrl.enqueue(job(0, loc, AccessKind::Read));
        let _ = run_to_idle(&mut ctrl);
        assert_eq!(ctrl.stats().precharges, 1);
        // A later access to the same row misses (row was closed).
        ctrl.enqueue(job(1, Location { column: 3, ..loc }, AccessKind::Read));
        let mut out = Vec::new();
        let mut now = 200;
        while !ctrl.is_idle() {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        assert_eq!(out[0].outcome, RowOutcome::Miss);
    }

    #[test]
    fn rank_parallel_reads_overlap() {
        // Two reads to different ranks finish much sooner than 2× a single
        // read, because only their data beats serialize on the bus.
        let mut ctrl = controller(PagePolicy::Open);
        let t = crate::config::Timing::ddr4_2400();
        ctrl.enqueue(job(0, Location { rank: 0, row: 1, ..Location::default() }, AccessKind::Read));
        ctrl.enqueue(job(1, Location { rank: 1, row: 2, ..Location::default() }, AccessKind::Read));
        let results = run_to_idle(&mut ctrl);
        let last = results.iter().map(|r| r.finish_cycle).max().unwrap();
        let single = t.tRCD + t.tCL + t.tBL;
        assert!(last < 2 * single, "no overlap: last={last}, single={single}");
    }

    #[test]
    fn fr_fcfs_prefers_row_hit_over_older_conflict() {
        let mut ctrl = controller(PagePolicy::Open);
        let bank0 = Location::default();
        // Open row 1 on bank 0.
        ctrl.enqueue(job(0, Location { row: 1, ..bank0 }, AccessKind::Read));
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        // Older burst conflicts (row 2, bank 0); younger hits (row 1).
        ctrl.enqueue(BurstJob {
            arrival: now,
            ..job(1, Location { row: 2, ..bank0 }, AccessKind::Read)
        });
        ctrl.enqueue(BurstJob {
            arrival: now,
            ..job(2, Location { row: 1, column: 7, ..bank0 }, AccessKind::Read)
        });
        let results = run_to_idle(&mut ctrl);
        let order: Vec<u64> = results.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![2, 1], "row hit should bypass older conflict");
    }

    #[test]
    fn writes_are_counted_and_complete() {
        let mut ctrl = controller(PagePolicy::Open);
        ctrl.enqueue(job(0, Location { row: 3, ..Location::default() }, AccessKind::Write));
        let results = run_to_idle(&mut ctrl);
        assert_eq!(results.len(), 1);
        assert_eq!(ctrl.stats().writes, 1);
        assert_eq!(ctrl.stats().reads, 0);
    }

    #[test]
    fn adaptive_policy_closes_idle_rows_but_keeps_hot_ones() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.page_policy = PagePolicy::Adaptive { timeout: 100 };
        let mut ctrl = ChannelController::new(config);
        let loc = Location { row: 9, ..Location::default() };
        ctrl.enqueue(job(0, loc, AccessKind::Read));
        let _ = run_to_idle(&mut ctrl);
        // Immediately after: row still open (within timeout).
        let t = config.timing;
        let mut out = Vec::new();
        ctrl.enqueue(BurstJob {
            arrival: 60,
            ..job(1, Location { column: 1, ..loc }, AccessKind::Read)
        });
        let mut now = 60;
        while !ctrl.is_idle() {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        assert_eq!(out[0].outcome, RowOutcome::Hit, "hot row stays open");
        // Far beyond the timeout: an idle tick closes it, so a later access
        // to the same row misses.
        for idle in 0..(t.tRAS + 300) {
            ctrl.tick(now + idle, &mut out);
        }
        let late = now + t.tRAS + 400;
        ctrl.enqueue(BurstJob {
            arrival: late,
            ..job(2, Location { column: 2, ..loc }, AccessKind::Read)
        });
        let mut results = Vec::new();
        let mut cycle = late;
        while !ctrl.is_idle() {
            ctrl.tick(cycle, &mut results);
            cycle += 1;
        }
        assert_eq!(results[0].outcome, RowOutcome::Miss, "idle row was closed");
    }

    #[test]
    fn fcfs_never_bypasses_the_oldest_request() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.scheduler = crate::config::SchedulerPolicy::Fcfs;
        let mut ctrl = ChannelController::new(config);
        let bank0 = Location::default();
        // Open row 1 on bank 0.
        ctrl.enqueue(job(0, Location { row: 1, ..bank0 }, AccessKind::Read));
        let mut out = Vec::new();
        let mut now = 0;
        while out.is_empty() {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        // Older conflicting burst, younger row hit: FCFS must serve the
        // conflict first (contrast with the FR-FCFS test above).
        ctrl.enqueue(BurstJob {
            arrival: now,
            ..job(1, Location { row: 2, ..bank0 }, AccessKind::Read)
        });
        ctrl.enqueue(BurstJob {
            arrival: now,
            ..job(2, Location { row: 1, column: 7, ..bank0 }, AccessKind::Read)
        });
        let results = run_to_idle(&mut ctrl);
        let order: Vec<u64> = results.iter().map(|r| r.id.0).collect();
        assert_eq!(order, vec![1, 2], "FCFS preserves age order");
    }

    #[test]
    fn refresh_blocks_the_rank_and_is_counted() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.refresh = true;
        let mut ctrl = ChannelController::new(config);
        let t = config.timing;
        // A burst arriving exactly when rank 0's first refresh is due must
        // wait out tRFC.
        let due = t.tREFI / config.topology.ranks_per_channel() as u64;
        ctrl.enqueue(BurstJob {
            arrival: due,
            ..job(0, Location { row: 5, ..Location::default() }, AccessKind::Read)
        });
        let mut out = Vec::new();
        let mut now = due;
        while out.is_empty() {
            ctrl.tick(now, &mut out);
            now += 1;
            assert!(now < due + 10 * t.tRFC, "livelock");
        }
        assert!(ctrl.stats().refreshes >= 1);
        // The first command could not issue before the refresh finished.
        assert!(out[0].issue_cycle >= due + t.tRFC, "{} < {}", out[0].issue_cycle, due + t.tRFC);
    }

    #[test]
    fn refresh_disabled_never_fires() {
        let mut ctrl = controller(PagePolicy::Open);
        ctrl.enqueue(job(0, Location::default(), AccessKind::Read));
        let _ = run_to_idle(&mut ctrl);
        assert_eq!(ctrl.stats().refreshes, 0);
    }

    #[test]
    fn request_helper_burst_count_matches_controller_use() {
        // Sanity link between Request::bursts and mapping granularity.
        let config = MemoryConfig::ddr4_2400_4ch();
        let req = Request::read(0, 512);
        assert_eq!(req.bursts(config.topology.burst_bytes), 8);
        let _ = AddressMapping::RowRankBankColumn;
    }

    #[test]
    fn next_event_cycle_is_exact_for_a_future_arrival() {
        let mut ctrl = controller(PagePolicy::Open);
        ctrl.enqueue(BurstJob {
            arrival: 777,
            ..job(0, Location { row: 5, ..Location::default() }, AccessKind::Read)
        });
        assert_eq!(ctrl.next_event_cycle(0), Some(777));
        assert_eq!(ctrl.next_event_cycle(800), Some(800));
    }

    #[test]
    fn next_event_cycle_reports_refresh_on_an_empty_queue() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.refresh = true;
        let ctrl = ChannelController::new(config);
        let first = ctrl.next_event_cycle(0).expect("refresh event");
        let stagger = config.timing.tREFI / config.topology.ranks_per_channel() as u64;
        assert_eq!(first, stagger, "first staggered refresh");
    }
}
