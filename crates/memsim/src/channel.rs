//! Per-channel shared data bus.
//!
//! All ranks on a channel share one data bus; concurrent bank/rank accesses
//! overlap their array work but serialize their data beats here. Switching
//! drivers between ranks costs an extra [`Timing::tRTRS`] bubble.

use serde::{Deserialize, Serialize};

use crate::config::Timing;
use crate::Cycle;

/// Data-bus occupancy tracker for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DataBus {
    /// Cycle at which the bus becomes free.
    free_at: Cycle,
    /// Rank that drove the bus last.
    last_rank: Option<usize>,
    /// Total cycles the bus has been occupied (for utilization stats).
    busy_cycles: Cycle,
}

impl DataBus {
    /// A bus that is free at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Earliest cycle (≥ `earliest`) at which `rank` may start a data burst.
    #[must_use]
    pub fn ready(&self, earliest: Cycle, rank: usize, timing: &Timing) -> Cycle {
        let mut at = self.free_at.max(earliest);
        if let Some(last) = self.last_rank {
            if last != rank && at < self.free_at + timing.tRTRS {
                at = self.free_at + timing.tRTRS;
            }
        }
        at
    }

    /// Absolute earliest cycle at which `rank` could start any data burst,
    /// given the current reservation: [`DataBus::ready`] with no lower
    /// bound. Used by the controller's next-event calculation — an existing
    /// reservation (plus a rank-switch bubble) is what bounds how far the
    /// clock may jump before a held column command becomes legal.
    #[must_use]
    pub fn earliest_start(&self, rank: usize, timing: &Timing) -> Cycle {
        self.ready(0, rank, timing)
    }

    /// Reserves the bus for `rank` from `at` for `duration` cycles.
    ///
    /// # Panics
    ///
    /// Debug-panics if the reservation starts before the bus is free.
    pub fn reserve(&mut self, at: Cycle, duration: Cycle, rank: usize) {
        debug_assert!(at >= self.free_at, "bus double-booked");
        self.free_at = at + duration;
        self.last_rank = Some(rank);
        self.busy_cycles += duration;
    }

    /// Cycle at which the bus next becomes free.
    #[must_use]
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Total cycles spent transferring data.
    #[must_use]
    pub fn busy_cycles(&self) -> Cycle {
        self.busy_cycles
    }

    /// Bus utilization over the first `horizon` cycles (0.0–1.0).
    #[must_use]
    pub fn utilization(&self, horizon: Cycle) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> Timing {
        Timing::ddr4_2400()
    }

    #[test]
    fn fresh_bus_is_immediately_ready() {
        let bus = DataBus::new();
        assert_eq!(bus.ready(5, 0, &timing()), 5);
        assert_eq!(bus.free_at(), 0);
    }

    #[test]
    fn reservation_blocks_until_free() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.reserve(10, t.tBL, 0);
        assert_eq!(bus.ready(0, 0, &t), 10 + t.tBL);
    }

    #[test]
    fn rank_switch_costs_trtrs() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.reserve(0, t.tBL, 0);
        // Same rank: back-to-back; different rank: bubble.
        assert_eq!(bus.ready(0, 0, &t), t.tBL);
        assert_eq!(bus.ready(0, 1, &t), t.tBL + t.tRTRS);
    }

    #[test]
    fn late_requester_does_not_pay_switch_penalty_twice() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.reserve(0, t.tBL, 0);
        // Arriving well after the switch window: no penalty.
        let late = t.tBL + t.tRTRS + 100;
        assert_eq!(bus.ready(late, 1, &t), late);
    }

    #[test]
    fn utilization_accumulates_busy_cycles() {
        let t = timing();
        let mut bus = DataBus::new();
        bus.reserve(0, t.tBL, 0);
        bus.reserve(bus.free_at(), t.tBL, 0);
        assert_eq!(bus.busy_cycles(), 2 * t.tBL);
        assert!((bus.utilization(2 * t.tBL) - 1.0).abs() < 1e-12);
        assert_eq!(bus.utilization(0), 0.0);
    }
}
