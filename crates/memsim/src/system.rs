//! The user-facing memory system: request submission, simulation driving,
//! and completion collection.

use std::collections::HashMap;

use crate::address::Location;
use crate::config::MemoryConfig;
use crate::controller::{BurstJob, ChannelController};
use crate::request::{Completion, Request, RequestId};
use crate::stats::MemoryStats;
use crate::Cycle;

/// Per-request tracking while its bursts are in flight.
#[derive(Debug, Clone, Copy)]
struct Pending {
    arrival: Cycle,
    remaining: u32,
    start_cycle: Cycle,
    finish_cycle: Cycle,
    row_hits: u32,
    row_misses: u32,
    row_conflicts: u32,
}

/// A complete simulated DDR4 memory system.
///
/// Submit [`Request`]s, then either step cycle-by-cycle with
/// [`MemorySystem::tick`] or drain everything with
/// [`MemorySystem::run_until_idle`], and read back [`Completion`]s.
///
/// ```
/// use fafnir_mem::{MemoryConfig, MemorySystem, Request};
///
/// let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
/// let a = mem.submit(Request::read(0x0000, 512));
/// let b = mem.submit(Request::read(0x8000, 512));
/// mem.run_until_idle();
/// assert!(mem.completion(a).is_some() && mem.completion(b).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemoryConfig,
    controllers: Vec<ChannelController>,
    pending: HashMap<RequestId, Pending>,
    completions: HashMap<RequestId, Completion>,
    request_stats: MemoryStats,
    next_id: u64,
    next_seq: u64,
    now: Cycle,
    /// Cycles skipped by event-driven fast-forwarding (diagnostic only;
    /// deliberately not part of [`MemoryStats`] so stepped and
    /// fast-forwarded runs produce identical stats).
    skipped_cycles: u64,
}

impl MemorySystem {
    /// Creates a memory system from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`MemoryConfig::validate`].
    #[must_use]
    pub fn new(config: MemoryConfig) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid memory config: {e}"));
        let controllers = (0..config.topology.channels)
            .map(|channel| ChannelController::with_channel(config, channel))
            .collect();
        Self {
            config,
            controllers,
            pending: HashMap::new(),
            completions: HashMap::new(),
            request_stats: MemoryStats::new(),
            next_id: 0,
            next_seq: 0,
            now: 0,
            skipped_cycles: 0,
        }
    }

    /// The configuration this system was built with.
    #[must_use]
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Current simulation cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Submits a request, splitting it into bursts routed to the owning
    /// channels. Returns the id used to look up its [`Completion`].
    pub fn submit(&mut self, request: Request) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        let bursts = request.bursts(self.config.topology.burst_bytes) as u32;
        self.pending.insert(
            id,
            Pending {
                arrival: request.arrival,
                remaining: bursts,
                start_cycle: Cycle::MAX,
                finish_cycle: 0,
                row_hits: 0,
                row_misses: 0,
                row_conflicts: 0,
            },
        );
        for burst in 0..bursts {
            let addr = crate::PhysAddr(
                request.addr.0 + u64::from(burst) * self.config.topology.burst_bytes as u64,
            );
            let location = self.config.mapping.decode(addr, &self.config.topology);
            let job = BurstJob {
                id,
                burst_index: burst,
                location,
                kind: request.kind,
                arrival: request.arrival,
                seq: self.next_seq,
            };
            self.next_seq += 1;
            self.controllers[location.channel].enqueue(job);
        }
        id
    }

    /// Convenience: submits a read of `bytes` at the explicit device
    /// `location` (encoded through the configured mapping).
    pub fn submit_read_at(
        &mut self,
        location: Location,
        bytes: usize,
        arrival: Cycle,
    ) -> RequestId {
        let addr = self.config.mapping.encode(location, &self.config.topology);
        self.submit(Request::read(addr.0, bytes).at(arrival))
    }

    /// Advances the simulation one command-clock cycle.
    pub fn tick(&mut self) {
        let mut results = Vec::new();
        for controller in &mut self.controllers {
            controller.tick(self.now, &mut results);
        }
        self.absorb(results);
        self.now += 1;
    }

    /// Folds finished bursts into per-request tracking; requests whose last
    /// burst landed become [`Completion`]s. Every fold is commutative (min
    /// start, max finish, outcome counts, integer sums), so the absorption
    /// order across controllers is immaterial.
    fn absorb(&mut self, results: Vec<crate::controller::BurstResult>) {
        for result in results {
            let Some(pending) = self.pending.get_mut(&result.id) else { continue };
            pending.start_cycle = pending.start_cycle.min(result.issue_cycle);
            pending.finish_cycle = pending.finish_cycle.max(result.finish_cycle);
            match result.outcome {
                crate::bank::RowOutcome::Hit => pending.row_hits += 1,
                crate::bank::RowOutcome::Miss => pending.row_misses += 1,
                crate::bank::RowOutcome::Conflict => pending.row_conflicts += 1,
            }
            pending.remaining -= 1;
            if pending.remaining == 0 {
                let pending = self.pending.remove(&result.id).expect("tracked");
                self.request_stats.requests_completed += 1;
                self.request_stats.total_request_latency +=
                    pending.finish_cycle.saturating_sub(pending.arrival);
                self.completions.insert(
                    result.id,
                    Completion {
                        id: result.id,
                        finish_cycle: pending.finish_cycle,
                        start_cycle: pending.start_cycle,
                        row_hits: pending.row_hits,
                        row_misses: pending.row_misses,
                        row_conflicts: pending.row_conflicts,
                    },
                );
            }
        }
    }

    /// Runs until every queued burst has issued, then advances the clock to
    /// the last data beat. Returns the final cycle.
    ///
    /// Time advances by **next-event fast-forwarding**: whenever a tick
    /// dequeues nothing, the clock jumps straight to the earliest cycle at
    /// which *any* controller could do something observable (issue a
    /// command, fire a refresh, close an idle row). Controller event bounds
    /// are conservative-early, never late, so every command issues on
    /// exactly the same cycle as the unit-stepped reference
    /// [`MemorySystem::run_until_idle_stepped`] — the parity suite asserts
    /// identical command logs, stats and completions.
    pub fn run_until_idle(&mut self) -> Cycle {
        // Periodic refresh and adaptive closes fire on controllers even
        // while they hold no queued work, coupling every channel to the
        // global clock; those modes keep the lockstep driver.
        if self.config.refresh
            || matches!(self.config.page_policy, crate::config::PagePolicy::Adaptive { .. })
        {
            return self.run_until_idle_lockstep();
        }
        // Otherwise channels share no simulation state, so each controller
        // drains to empty on its own private clock — skipping every cycle
        // on which only *other* channels had events — and issues each
        // command on exactly the same cycle the lockstep driver would.
        let start = self.now;
        let mut end = self.now;
        let mut results = Vec::new();
        for controller in &mut self.controllers {
            if controller.is_idle() {
                continue;
            }
            let (local_end, skipped) = controller.drain(start, &mut results);
            end = end.max(local_end);
            self.skipped_cycles += skipped;
        }
        self.now = end;
        self.absorb(results);
        self.finish_clock()
    }

    /// Lockstep driver: ticks every controller on one shared clock,
    /// fast-forwarding only when *no* controller dequeued anything. Needed
    /// whenever idle controllers still have scheduled events (refresh,
    /// adaptive closes); kept as the general-case fallback.
    fn run_until_idle_lockstep(&mut self) -> Cycle {
        while self.controllers.iter().any(|c| !c.is_idle()) {
            let before = self.total_queued();
            self.tick();
            if self.total_queued() == before {
                // Nothing issued: fast-forward to the next cycle at which
                // any controller (idle ones included — their refreshes must
                // still fire on schedule) could make progress.
                if let Some(next) =
                    self.controllers.iter().filter_map(|c| c.next_event_cycle(self.now)).min()
                {
                    if next > self.now {
                        self.skipped_cycles += next - self.now;
                        self.now = next;
                    }
                }
            }
        }
        self.finish_clock()
    }

    /// Reference driver: identical contract to
    /// [`MemorySystem::run_until_idle`] but advances strictly one cycle at a
    /// time, never jumping the clock. O(total simulated cycles); kept as the
    /// ground truth the fast-forwarding driver is verified against.
    pub fn run_until_idle_stepped(&mut self) -> Cycle {
        while self.controllers.iter().any(|c| !c.is_idle()) {
            self.tick();
        }
        self.finish_clock()
    }

    /// Advances the clock to the last in-flight data beat and returns it.
    fn finish_clock(&mut self) -> Cycle {
        let last_finish =
            self.completions.values().map(|c| c.finish_cycle).max().unwrap_or(self.now);
        self.now = self.now.max(last_finish);
        self.now
    }

    /// Cycles the event-driven driver skipped instead of simulating
    /// (diagnostic; always 0 after a purely stepped run).
    #[must_use]
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// The completion record for `id`, if it has finished.
    #[must_use]
    pub fn completion(&self, id: RequestId) -> Option<&Completion> {
        self.completions.get(&id)
    }

    /// Drains and returns all recorded completions (e.g. between batches).
    pub fn take_completions(&mut self) -> Vec<Completion> {
        let mut all: Vec<Completion> = self.completions.drain().map(|(_, c)| c).collect();
        all.sort_by_key(|c| (c.finish_cycle, c.id));
        all
    }

    /// Whether the whole system is quiescent: no request partially
    /// completed and no controller with queued bursts.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.controllers.iter().all(ChannelController::is_idle)
    }

    /// Zeroes every accumulated counter (request-level and per-channel) at
    /// an experiment-phase boundary.
    ///
    /// Resetting while requests are in flight would split one request's
    /// counters across two phases (its bursts issued before the reset
    /// vanish, but its completion latency lands in the new phase), so this
    /// is the checked entry point: it debug-asserts the system is idle.
    /// Drain with [`MemorySystem::run_until_idle`] first.
    ///
    /// The idle check and zeroing both go through
    /// [`MemoryStats::reset_phase`], the same path the fast-functional
    /// model uses, so the phase-reset contract cannot drift between
    /// backends.
    pub fn reset_stats(&mut self) {
        let idle = self.is_idle();
        let (pending, queued) = (self.pending.len(), self.total_queued());
        self.request_stats.reset_phase(idle, || {
            format!(
                "{pending} pending requests, {queued} queued bursts — counters of in-flight \
                 work would be split across phases"
            )
        });
        for controller in &mut self.controllers {
            controller.reset_stats();
        }
    }

    /// Merged counters across all channels plus request-level stats.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        let mut merged = self.request_stats;
        for controller in &self.controllers {
            merged.merge(controller.stats());
        }
        merged
    }

    /// Peak data-bus utilization across all buses, over the elapsed cycles.
    #[must_use]
    pub fn peak_bus_utilization(&self) -> f64 {
        self.controllers
            .iter()
            .flat_map(|c| c.buses().iter().map(|bus| bus.utilization(self.now)))
            .fold(0.0, f64::max)
    }

    fn total_queued(&self) -> usize {
        self.controllers.iter().map(ChannelController::queue_len).sum()
    }

    /// Starts recording every issued command on every channel (see
    /// [`crate::verify`]).
    pub fn enable_command_logs(&mut self) {
        for controller in &mut self.controllers {
            controller.enable_command_log();
        }
    }

    /// Takes the per-channel command logs (empty if logging was never
    /// enabled); logging stays on with fresh logs.
    pub fn take_command_logs(&mut self) -> Vec<crate::verify::CommandLog> {
        self.controllers.iter_mut().filter_map(ChannelController::take_command_log).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Timing;

    #[test]
    fn vector_read_is_eight_bursts_one_activation() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        let id = mem.submit(Request::read(0x10000, 512));
        mem.run_until_idle();
        let done = mem.completion(id).unwrap();
        assert_eq!(done.row_hits + done.row_misses + done.row_conflicts, 8);
        // One activation, seven hits: the vector streams from one row.
        assert_eq!(mem.stats().activations, 1);
        assert_eq!(mem.stats().row_hits, 7);
    }

    #[test]
    fn vector_read_latency_is_activation_plus_burst_stream() {
        let mem_config = MemoryConfig::ddr4_2400_4ch();
        let t = Timing::ddr4_2400();
        let mut mem = MemorySystem::new(mem_config);
        let id = mem.submit(Request::read(0, 512));
        mem.run_until_idle();
        let done = mem.completion(id).unwrap();
        // Lower bound: ACT + tRCD + tCL + 8 bursts at tCCD_L pacing.
        let lower = t.tRCD + t.tCL + 7 * t.tCCD_L.min(t.tBL) + t.tBL;
        assert!(done.finish_cycle >= lower, "{} < {}", done.finish_cycle, lower);
        // And it should not be wildly above that.
        assert!(done.finish_cycle <= lower + 3 * t.tCCD_L, "{}", done.finish_cycle);
    }

    #[test]
    fn reads_to_different_channels_are_fully_parallel() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        // Same-rank-coordinates, different channels.
        let base = crate::Location { row: 1, ..crate::Location::default() };
        let mut ids = Vec::new();
        for channel in 0..4 {
            let loc = crate::Location { channel, ..base };
            ids.push(mem.submit_read_at(loc, 512, 0));
        }
        mem.run_until_idle();
        let finishes: Vec<Cycle> =
            ids.iter().map(|&id| mem.completion(id).unwrap().finish_cycle).collect();
        let spread = finishes.iter().max().unwrap() - finishes.iter().min().unwrap();
        assert_eq!(spread, 0, "channels should not interfere: {finishes:?}");
    }

    #[test]
    fn reads_to_same_bank_different_rows_serialize() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        let a = mem.submit_read_at(crate::Location { row: 1, ..Default::default() }, 64, 0);
        let b = mem.submit_read_at(crate::Location { row: 2, ..Default::default() }, 64, 0);
        mem.run_until_idle();
        let fa = mem.completion(a).unwrap().finish_cycle;
        let fb = mem.completion(b).unwrap().finish_cycle;
        let t = Timing::ddr4_2400();
        assert!(fb > fa + t.tRP, "conflict should pay precharge: {fa} vs {fb}");
    }

    #[test]
    fn arrival_cycle_delays_service() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        let id = mem.submit(Request::read(0, 64).at(500));
        mem.run_until_idle();
        let done = mem.completion(id).unwrap();
        assert!(done.start_cycle >= 500);
    }

    #[test]
    fn reset_stats_gives_clean_per_phase_counters() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        mem.submit(Request::read(0x10000, 512));
        mem.run_until_idle();
        assert!(mem.is_idle());
        let phase_one = mem.stats();
        assert_eq!(phase_one.reads, 8);
        mem.reset_stats();
        assert_eq!(mem.stats(), MemoryStats::default());
        // Phase two counts only its own work — nothing carried over.
        mem.submit(Request::read(0x20000, 512));
        mem.run_until_idle();
        assert_eq!(mem.stats().reads, 8);
        assert_eq!(mem.stats().requests_completed, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "reset_stats on a busy memory system")]
    fn reset_stats_mid_flight_is_rejected() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        mem.submit(Request::read(0, 512));
        assert!(!mem.is_idle());
        mem.reset_stats(); // Counters of the in-flight read would be split.
    }

    #[test]
    fn take_completions_drains_in_finish_order() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        let _ = mem.submit(Request::read(0, 64));
        let _ = mem.submit(Request::read(1 << 20, 64));
        mem.run_until_idle();
        let completions = mem.take_completions();
        assert_eq!(completions.len(), 2);
        assert!(completions[0].finish_cycle <= completions[1].finish_cycle);
        assert!(mem.take_completions().is_empty());
    }

    #[test]
    fn stats_accumulate_across_requests() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        for i in 0..10 {
            mem.submit(Request::read(i * 4096, 512));
        }
        mem.run_until_idle();
        let stats = mem.stats();
        assert_eq!(stats.requests_completed, 10);
        assert_eq!(stats.reads, 80);
        assert!(stats.mean_request_latency() > 0.0);
        assert!(mem.peak_bus_utilization() > 0.0);
    }

    #[test]
    fn command_logs_verify_against_jedec_constraints() {
        let config = MemoryConfig::ddr4_2400_4ch();
        let mut mem = MemorySystem::new(config);
        mem.enable_command_logs();
        for i in 0..24u64 {
            // Mixed sizes and overlapping banks/rows.
            mem.submit(Request::read(i * 3_000, if i % 3 == 0 { 512 } else { 64 }));
        }
        mem.run_until_idle();
        for log in mem.take_command_logs() {
            let violations =
                crate::verify::verify_log(&log, &config.timing, config.topology.banks_per_group);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn channel_interleaved_mapping_spreads_a_stream() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.mapping = crate::AddressMapping::ChannelInterleaved;
        let mut mem = MemorySystem::new(config);
        // A contiguous 2 KB stream: bursts round-robin over the channels, so
        // all four channels carry traffic.
        let id = mem.submit(Request::read(0, 2048));
        mem.run_until_idle();
        assert!(mem.completion(id).is_some());
        let stats = mem.stats();
        assert_eq!(stats.reads, 32);
        // Each channel served 8 bursts: the stream completed much faster
        // than a single-channel serial read would allow.
        let t = config.timing;
        let single_channel_floor = 32 * t.tBL;
        assert!(
            mem.completion(id).unwrap().finish_cycle < single_channel_floor + t.tRCD + t.tCL,
            "interleaving should engage all channels"
        );
    }

    #[test]
    fn straggler_rank_slows_only_its_own_reads() {
        let mut config = MemoryConfig::ddr4_2400_4ch();
        config.straggler = Some((0, 0, 500));
        config.ndp_data_path = true; // per-rank ports: reads are independent
        let mut mem = MemorySystem::new(config);
        let slow = mem.submit_read_at(crate::Location { row: 1, ..Default::default() }, 64, 0);
        let fast =
            mem.submit_read_at(crate::Location { rank: 1, row: 1, ..Default::default() }, 64, 0);
        mem.run_until_idle();
        let slow_done = mem.completion(slow).unwrap().finish_cycle;
        let fast_done = mem.completion(fast).unwrap().finish_cycle;
        assert!(slow_done >= fast_done + 400, "slow {slow_done} vs fast {fast_done}");
    }

    #[test]
    fn run_until_idle_on_empty_system_is_a_noop() {
        let mut mem = MemorySystem::new(MemoryConfig::ddr4_2400_4ch());
        assert_eq!(mem.run_until_idle(), 0);
    }
}
