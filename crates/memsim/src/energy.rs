//! DRAM energy model.
//!
//! FAFNIR's energy claim (Sec. VI, "Memory Energy Saving") is that removing
//! redundant reads removes their DRAM energy, with DRAM dominating compute.
//! This model converts the simulator's command counts into energy using
//! per-command constants derived from DDR4 IDD figures (Micron power
//! calculator methodology, the same source the paper cites).

use serde::{Deserialize, Serialize};

use crate::stats::MemoryStats;

/// Per-command and background energy constants, in picojoules.
///
/// # Examples
///
/// ```
/// use fafnir_mem::{EnergyModel, MemoryStats};
///
/// let model = EnergyModel::ddr4();
/// let stats = MemoryStats { reads: 8, activations: 1, ..Default::default() };
/// assert!(model.dynamic_nj(&stats) > 10.0); // one vector read costs > 10 nJ
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one ACT+PRE pair (row activation cycle).
    pub act_pre_pj: f64,
    /// Energy of one 64-byte read burst (array + I/O).
    pub read_pj: f64,
    /// Energy of one 64-byte write burst.
    pub write_pj: f64,
    /// Background power per rank in milliwatts (converted via runtime).
    pub background_mw_per_rank: f64,
}

impl EnergyModel {
    /// DDR4-2400 x8 constants (approximate, datasheet-derived).
    #[must_use]
    pub fn ddr4() -> Self {
        Self {
            act_pre_pj: 2_500.0,
            read_pj: 1_300.0,
            write_pj: 1_400.0,
            background_mw_per_rank: 80.0,
        }
    }

    /// Dynamic (command-driven) energy in nanojoules for the given counters.
    #[must_use]
    pub fn dynamic_nj(&self, stats: &MemoryStats) -> f64 {
        (stats.activations as f64 * self.act_pre_pj
            + stats.reads as f64 * self.read_pj
            + stats.writes as f64 * self.write_pj)
            / 1_000.0
    }

    /// Background energy in nanojoules over `ns` nanoseconds for `ranks`
    /// ranks.
    #[must_use]
    pub fn background_nj(&self, ns: f64, ranks: usize) -> f64 {
        // mW × ns = pJ; divide by 1000 for nJ.
        self.background_mw_per_rank * ranks as f64 * ns / 1_000.0
    }

    /// Total energy in nanojoules: dynamic plus background.
    #[must_use]
    pub fn total_nj(&self, stats: &MemoryStats, ns: f64, ranks: usize) -> f64 {
        self.dynamic_nj(stats) + self.background_nj(ns, ranks)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_scales_with_commands() {
        let model = EnergyModel::ddr4();
        let stats = MemoryStats { activations: 2, reads: 10, writes: 0, ..Default::default() };
        let expected = (2.0 * model.act_pre_pj + 10.0 * model.read_pj) / 1_000.0;
        assert!((model.dynamic_nj(&stats) - expected).abs() < 1e-9);
    }

    #[test]
    fn background_energy_scales_with_time_and_ranks() {
        let model = EnergyModel::ddr4();
        let one = model.background_nj(1_000.0, 1);
        let many = model.background_nj(1_000.0, 32);
        assert!((many / one - 32.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_reads_cost_less_energy() {
        let model = EnergyModel::ddr4();
        let full = MemoryStats { reads: 32, activations: 32, ..Default::default() };
        let deduped = MemoryStats { reads: 14, activations: 14, ..Default::default() };
        assert!(model.dynamic_nj(&deduped) < model.dynamic_nj(&full));
    }

    #[test]
    fn total_is_sum_of_parts() {
        let model = EnergyModel::ddr4();
        let stats = MemoryStats { reads: 4, ..Default::default() };
        let total = model.total_nj(&stats, 500.0, 8);
        let sum = model.dynamic_nj(&stats) + model.background_nj(500.0, 8);
        assert!((total - sum).abs() < 1e-9);
    }
}
