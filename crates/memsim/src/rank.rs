//! Per-rank state: banks plus rank-wide activation and column constraints.

use serde::{Deserialize, Serialize};

use crate::bank::Bank;
use crate::config::{Timing, Topology};
use crate::Cycle;

/// One DRAM rank: a set of banks sharing tRRD, tFAW and tCCD constraints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    banks: Vec<Bank>,
    bank_groups: usize,
    banks_per_group: usize,
    /// Issue cycles of the most recent activations (for tFAW).
    recent_acts: Vec<Cycle>,
    /// Last ACT cycle and its bank group (for tRRD_S/L).
    last_act: Option<(Cycle, usize)>,
    /// Last column command cycle and its bank group (for tCCD_S/L).
    last_column: Option<(Cycle, usize)>,
}

impl Rank {
    /// Creates a rank with the topology's bank organization, all banks idle.
    #[must_use]
    pub fn new(topology: &Topology) -> Self {
        Self {
            banks: vec![Bank::new(); topology.banks_per_rank()],
            bank_groups: topology.bank_groups,
            banks_per_group: topology.banks_per_group,
            recent_acts: Vec::new(),
            last_act: None,
            last_column: None,
        }
    }

    /// Immutable access to a bank by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` is out of range.
    #[must_use]
    pub fn bank(&self, flat_bank: usize) -> &Bank {
        &self.banks[flat_bank]
    }

    /// Mutable access to a bank by flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat_bank` is out of range.
    pub fn bank_mut(&mut self, flat_bank: usize) -> &mut Bank {
        &mut self.banks[flat_bank]
    }

    /// Number of banks in this rank.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// The bank group a flat bank index belongs to.
    #[must_use]
    pub fn group_of(&self, flat_bank: usize) -> usize {
        flat_bank / self.banks_per_group
    }

    /// Earliest cycle (≥ `now`) an ACT targeting `flat_bank` satisfies the
    /// rank-wide tRRD and tFAW constraints (bank-local tRC is separate).
    #[must_use]
    pub fn act_ready(&self, now: Cycle, flat_bank: usize, timing: &Timing) -> Cycle {
        let mut ready = now;
        if let Some((last, group)) = self.last_act {
            let gap = if group == self.group_of(flat_bank) { timing.tRRD_L } else { timing.tRRD_S };
            ready = ready.max(last + gap);
        }
        if self.recent_acts.len() >= 4 {
            // The 4th-most-recent ACT bounds the four-activate window.
            let oldest = self.recent_acts[self.recent_acts.len() - 4];
            ready = ready.max(oldest + timing.tFAW);
        }
        ready
    }

    /// Earliest cycle (≥ `now`) a RD/WR targeting `flat_bank` satisfies the
    /// rank-wide tCCD constraint.
    #[must_use]
    pub fn column_ready(&self, now: Cycle, flat_bank: usize, timing: &Timing) -> Cycle {
        match self.last_column {
            Some((last, group)) => {
                let gap =
                    if group == self.group_of(flat_bank) { timing.tCCD_L } else { timing.tCCD_S };
                now.max(last + gap)
            }
            None => now,
        }
    }

    /// Records an ACT issued at `at` to `flat_bank`.
    pub fn record_act(&mut self, at: Cycle, flat_bank: usize) {
        self.last_act = Some((at, self.group_of(flat_bank)));
        self.recent_acts.push(at);
        let keep = self.recent_acts.len().saturating_sub(4);
        if keep > 0 {
            self.recent_acts.drain(..keep);
        }
    }

    /// Records a RD/WR issued at `at` to `flat_bank`.
    pub fn record_column(&mut self, at: Cycle, flat_bank: usize) {
        self.last_column = Some((at, self.group_of(flat_bank)));
    }

    /// Number of bank groups in this rank.
    #[must_use]
    pub fn bank_group_count(&self) -> usize {
        self.bank_groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryConfig;

    fn rank() -> Rank {
        Rank::new(&MemoryConfig::ddr4_2400_4ch().topology)
    }

    fn timing() -> Timing {
        Timing::ddr4_2400()
    }

    #[test]
    fn new_rank_has_sixteen_idle_banks() {
        let rank = rank();
        assert_eq!(rank.bank_count(), 16);
        assert_eq!(rank.act_ready(0, 0, &timing()), 0);
        assert_eq!(rank.column_ready(0, 0, &timing()), 0);
    }

    #[test]
    fn group_of_partitions_banks() {
        let rank = rank();
        assert_eq!(rank.group_of(0), 0);
        assert_eq!(rank.group_of(3), 0);
        assert_eq!(rank.group_of(4), 1);
        assert_eq!(rank.group_of(15), 3);
    }

    #[test]
    fn trrd_is_longer_within_a_bank_group() {
        let t = timing();
        let mut rank = rank();
        rank.record_act(100, 0);
        assert_eq!(rank.act_ready(0, 1, &t), 100 + t.tRRD_L); // same group
        assert_eq!(rank.act_ready(0, 4, &t), 100 + t.tRRD_S); // other group
    }

    #[test]
    fn tfaw_limits_four_activations() {
        let t = timing();
        let mut rank = rank();
        for (i, at) in [0, 6, 12, 18].into_iter().enumerate() {
            rank.record_act(at, i * 4); // all different groups: tRRD_S pace
        }
        // Fifth ACT must wait until the first ACT + tFAW.
        assert_eq!(rank.act_ready(0, 1, &t), t.tFAW);
    }

    #[test]
    fn tccd_is_longer_within_a_bank_group() {
        let t = timing();
        let mut rank = rank();
        rank.record_column(50, 0);
        assert_eq!(rank.column_ready(0, 1, &t), 50 + t.tCCD_L);
        assert_eq!(rank.column_ready(0, 8, &t), 50 + t.tCCD_S);
    }

    #[test]
    fn constraints_do_not_apply_before_any_command() {
        let t = timing();
        let rank = rank();
        assert_eq!(rank.act_ready(33, 5, &t), 33);
        assert_eq!(rank.column_ready(71, 5, &t), 71);
    }
}
