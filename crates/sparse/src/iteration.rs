//! The iteration/round plan for large-matrix SpMV (paper Figs. 8 and 9).
//!
//! Only `vector_size` columns of the matrix fit into the FAFNIR tree at a
//! time. Iteration 0 multiplies the matrix chunk by chunk (one *round* per
//! chunk) and every later iteration only merges the partial-result streams
//! of the previous one, up to `vector_size` streams per round. Fig. 9 plots
//! iterations, rounds per iteration and required merges against the column
//! count: even 20-million-column matrices need no more than two merge
//! iterations at vector size 2048.

use serde::{Deserialize, Serialize};

/// The execution plan of one SpMV on FAFNIR.
///
/// # Examples
///
/// Fig. 9's headline: even 20 M columns need at most two merge iterations.
///
/// ```
/// use fafnir_sparse::SpmvPlan;
///
/// let plan = SpmvPlan::paper(20_000_000);
/// assert_eq!(plan.merge_iterations(), 2);
/// assert_eq!(plan.rounds_per_iteration, vec![9_766, 5, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpmvPlan {
    /// Columns processed per round (the paper's vector size, 2048 default).
    pub vector_size: usize,
    /// Matrix columns.
    pub columns: usize,
    /// Rounds in each iteration, starting with iteration 0.
    pub rounds_per_iteration: Vec<usize>,
}

impl SpmvPlan {
    /// Plans an SpMV over `columns` columns with the given vector size.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero or `vector_size < 2`: a merge round that
    /// folds "up to one" stream never reduces the stream count, so a plan
    /// with vector size 1 could never terminate.
    #[must_use]
    pub fn new(columns: usize, vector_size: usize) -> Self {
        assert!(columns > 0, "plan dimensions must be non-zero");
        assert!(
            vector_size >= 2,
            "vector size must be at least 2: a 1-stream merge round never \
             shrinks the stream count"
        );
        let mut rounds_per_iteration = Vec::new();
        // Iteration 0: one round per column chunk.
        let mut streams = columns.div_ceil(vector_size);
        rounds_per_iteration.push(streams);
        // Merge iterations: each round folds up to `vector_size` streams.
        while streams > 1 {
            streams = streams.div_ceil(vector_size);
            rounds_per_iteration.push(streams);
        }
        Self { vector_size, columns, rounds_per_iteration }
    }

    /// The paper's configuration (vector size 2048, Sec. IV-D).
    #[must_use]
    pub fn paper(columns: usize) -> Self {
        Self::new(columns, 2048)
    }

    /// Total iterations (1 multiply iteration + merge iterations).
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.rounds_per_iteration.len()
    }

    /// Merge iterations only (`iterations − 1`).
    #[must_use]
    pub fn merge_iterations(&self) -> usize {
        self.iterations() - 1
    }

    /// Rounds of iteration 0 (chunks of the matrix).
    #[must_use]
    pub fn multiply_rounds(&self) -> usize {
        self.rounds_per_iteration[0]
    }

    /// Total rounds across all iterations.
    #[must_use]
    pub fn total_rounds(&self) -> usize {
        self.rounds_per_iteration.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_matrix_needs_no_merges() {
        let plan = SpmvPlan::paper(2048);
        assert_eq!(plan.iterations(), 1);
        assert_eq!(plan.merge_iterations(), 0);
        assert_eq!(plan.multiply_rounds(), 1);
    }

    #[test]
    fn medium_matrix_needs_one_merge() {
        // Up to vector_size² columns: one merge iteration.
        let plan = SpmvPlan::paper(2048 * 2048);
        assert_eq!(plan.merge_iterations(), 1);
        let plan = SpmvPlan::paper(100_000);
        assert_eq!(plan.merge_iterations(), 1);
        assert_eq!(plan.multiply_rounds(), 49);
    }

    #[test]
    fn twenty_million_columns_need_two_merges() {
        // Fig. 9's headline: even 20 M columns stay at ≤ 2 merge stages.
        let plan = SpmvPlan::paper(20_000_000);
        assert_eq!(plan.merge_iterations(), 2);
        assert_eq!(plan.multiply_rounds(), 9766);
        assert_eq!(plan.rounds_per_iteration, vec![9766, 5, 1]);
    }

    #[test]
    #[should_panic(expected = "vector size must be at least 2")]
    fn vector_size_one_is_rejected() {
        let _ = SpmvPlan::new(100, 1);
    }

    #[test]
    fn smaller_vector_size_needs_more_work() {
        let v1024 = SpmvPlan::new(20_000_000, 1024);
        let v2048 = SpmvPlan::new(20_000_000, 2048);
        assert!(v1024.multiply_rounds() > v2048.multiply_rounds());
        assert!(v1024.total_rounds() > v2048.total_rounds());
    }

    proptest! {
        #[test]
        fn plan_always_terminates_with_one_stream(
            columns in 1usize..100_000_000,
            vector_size in 2usize..10_000,
        ) {
            let plan = SpmvPlan::new(columns, vector_size);
            prop_assert_eq!(*plan.rounds_per_iteration.last().unwrap(), 1);
            // Rounds strictly shrink: iterations are logarithmic (base
            // vector_size) in the round count.
            for window in plan.rounds_per_iteration.windows(2) {
                prop_assert!(window[1] < window[0]);
            }
            let bound = 2 + (columns as f64).log(vector_size as f64).ceil() as usize;
            prop_assert!(plan.iterations() <= bound, "{} > {bound}", plan.iterations());
        }
    }
}
