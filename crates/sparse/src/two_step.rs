//! The Two-Step NDP SpMV baseline (paper Sec. V, \[10\]).
//!
//! The Two-Step algorithm converts SpMV's random accesses into regular
//! streaming: step 1 multiplies the matrix in column order, emitting sorted
//! partial-result runs; step 2 combines all runs in a *single* pass through
//! a binary-tree-based multi-way merge core — the part the accelerator
//! optimizes hardest. Compared to FAFNIR it pays more per non-zero in step
//! 1 (decompression plus a chain of adders instead of a parallel tree) but
//! less per entry in the merge.

use crate::fafnir_spmv::{SpmvRun, SpmvTiming};
use crate::iteration::SpmvPlan;
use crate::lil::LilMatrix;
use crate::stream::{PartialStream, StreamOps};

/// Executes `y = A·x` with the Two-Step structure: chunked multiply, then
/// one multi-way merge pass.
///
/// Returns an [`SpmvRun`] whose `volumes` reflect Two-Step's phases:
/// `volumes[0]` is the non-zero count and `volumes[1]` (when present) the
/// single merge pass's input volume.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `vector_size < 2` (the shared
/// [`SpmvPlan`] rejects 1-stream merge rounds).
#[must_use]
pub fn execute(matrix: &LilMatrix, x: &[f64], vector_size: usize) -> SpmvRun {
    assert_eq!(x.len(), matrix.cols(), "operand length mismatch");
    assert!(
        vector_size >= 2,
        "vector size must be at least 2: a 1-stream merge round never \
         shrinks the stream count"
    );
    let mut ops = StreamOps::default();
    let mut volumes = vec![matrix.nnz() as u64];

    // Step 1: per-chunk multiply producing one sorted run per chunk. The
    // hardware uses a chain of adders; functionally it is a column-order
    // accumulation into a row-sorted run.
    let runs: Vec<PartialStream> = matrix
        .column_chunks(vector_size)
        .map(|chunk| {
            let mut entries: Vec<(usize, f64)> = Vec::with_capacity(chunk.nnz());
            for (col, list) in chunk.columns() {
                ops.multiplies += list.len() as u64;
                entries.extend(list.iter().map(|&(row, value)| (row, value * x[col])));
            }
            entries.sort_by_key(|&(row, _)| row);
            PartialStream::from_sorted(entries)
        })
        .collect();

    // Step 2: one k-way merge over all runs (the optimized merge core).
    let y = if runs.len() > 1 {
        volumes.push(runs.iter().map(|r| r.len() as u64).sum());
        k_way_merge(&runs, &mut ops).to_dense(matrix.rows())
    } else {
        runs.into_iter().next().unwrap_or_default().to_dense(matrix.rows())
    };

    // Two-Step always completes in at most two phases; reuse the plan type
    // with its actual round structure (multiply rounds + 1 merge round).
    let plan = SpmvPlan::new(matrix.cols(), vector_size);
    SpmvRun { y, plan, volumes, ops }
}

/// Merges `k` sorted runs in one pass, summing equal rows.
fn k_way_merge(runs: &[PartialStream], ops: &mut StreamOps) -> PartialStream {
    // Cursor per run; a linear scan over k heads models the binary compare
    // tree (we count one compare per head inspection round).
    let mut cursors = vec![0usize; runs.len()];
    let mut out = PartialStream::new();
    loop {
        let mut best: Option<(usize, usize)> = None; // (row, run)
        for (run_index, run) in runs.iter().enumerate() {
            if let Some(&(row, _)) = run.entries().get(cursors[run_index]) {
                ops.compares += 1;
                if best.is_none_or(|(best_row, _)| row < best_row) {
                    best = Some((row, run_index));
                }
            }
        }
        let Some((row, run_index)) = best else { break };
        let (_, value) = runs[run_index].entries()[cursors[run_index]];
        cursors[run_index] += 1;
        // PartialStream::push folds equal rows, modelling the merge core's
        // accumulate-on-tie behaviour.
        if out.entries().last().is_some_and(|&(last, _)| last == row) {
            ops.adds += 1;
        } else {
            ops.forwards += 1;
        }
        out.push(row, value);
    }
    out
}

/// Convenience: FAFNIR-vs-Two-Step speedup on the same problem, each engine
/// timed on its own run record (Fig. 14's y-axis).
#[must_use]
pub fn speedup(timing: &SpmvTiming, fafnir_run: &SpmvRun, two_step_run: &SpmvRun) -> f64 {
    timing.two_step_ns(two_step_run) / timing.fafnir_ns(fafnir_run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fafnir_spmv;
    use crate::gen;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9_f64.max(y.abs() * 1e-12), "{x} vs {y}");
        }
    }

    #[test]
    fn matches_dense_reference() {
        let coo = gen::uniform(80, 120, 0.08, 11);
        let lil = LilMatrix::from(&coo);
        let x: Vec<f64> = (0..120).map(|i| (i % 7) as f64 - 3.0).collect();
        let run = execute(&lil, &x, 32);
        assert_close(&run.y, &coo.multiply_dense(&x));
    }

    #[test]
    fn agrees_with_fafnir_engine() {
        let coo = gen::rmat(7, 2000, 12);
        let lil = LilMatrix::from(&coo);
        let x: Vec<f64> = (0..128).map(|i| 0.5 + (i as f64) * 0.01).collect();
        let fafnir = fafnir_spmv::execute(&lil, &x, 16);
        let two_step = execute(&lil, &x, 16);
        assert_close(&fafnir.y, &two_step.y);
    }

    #[test]
    fn single_chunk_needs_no_merge_pass() {
        let coo = gen::uniform(32, 32, 0.1, 13);
        let lil = LilMatrix::from(&coo);
        let run = execute(&lil, &vec![1.0; 32], 64);
        assert_eq!(run.volumes.len(), 1);
    }

    #[test]
    fn multi_chunk_reports_merge_volume() {
        let coo = gen::uniform(64, 64, 0.2, 14);
        let lil = LilMatrix::from(&coo);
        let run = execute(&lil, &vec![1.0; 64], 8);
        assert_eq!(run.volumes.len(), 2);
        assert!(run.volumes[1] > 0);
    }

    #[test]
    fn fig14_envelope_holds() {
        let timing = SpmvTiming::paper();
        // Merge-free scientific kernel: big win.
        let small = gen::uniform(1024, 1024, 0.01, 15);
        let lil_small = LilMatrix::from(&small);
        let x_small = vec![1.0; 1024];
        let f_small = fafnir_spmv::execute(&lil_small, &x_small, 2048);
        let t_small = execute(&lil_small, &x_small, 2048);
        let s_small = speedup(&timing, &f_small, &t_small);
        assert!(s_small > 3.5 && s_small <= 4.6, "merge-free speedup {s_small}");

        // Merge-heavy graph: win shrinks toward ~1.1 but stays ≥ 1.
        let big = gen::rmat(9, 30_000, 16);
        let lil_big = LilMatrix::from(&big);
        let x_big = vec![1.0; 512];
        let f_big = fafnir_spmv::execute(&lil_big, &x_big, 8);
        let t_big = execute(&lil_big, &x_big, 8);
        let s_big = speedup(&timing, &f_big, &t_big);
        assert!(s_big >= 1.0, "worst case at least parity: {s_big}");
        assert!(s_big < s_small, "merges shrink the advantage");
    }
}
