//! Compressed sparse row (CSR) format — the reference format for validation
//! and for the Two-Step baseline's row-major streaming.

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;

/// A CSR sparse matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`rows + 1` entries).
    #[must_use]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// One row's `(column, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        self.col_idx[start..end].iter().copied().zip(self.values[start..end].iter().copied())
    }

    /// Sparse matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        (0..self.rows).map(|row| self.row(row).map(|(col, value)| value * x[col]).sum()).collect()
    }

    /// Transposes the matrix (used by apps needing `Aᵀx`).
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for row in 0..self.rows {
            for (col, value) in self.row(row) {
                coo.push(col, row, value);
            }
        }
        coo.sum_duplicates();
        CsrMatrix::from(&coo)
    }
}

impl From<&CooMatrix> for CsrMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let mut row_ptr = vec![0usize; coo.rows() + 1];
        for &(row, _, _) in coo.entries() {
            row_ptr[row + 1] += 1;
        }
        for i in 0..coo.rows() {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = Vec::with_capacity(coo.nnz());
        let mut values = Vec::with_capacity(coo.nnz());
        // COO entries are sorted row-major after sum_duplicates.
        for &(_, col, value) in coo.entries() {
            col_idx.push(col);
            values.push(value);
        }
        Self { rows: coo.rows(), cols: coo.cols(), row_ptr, col_idx, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2], [0, 0, 3], [4, 5, 0]]
        CsrMatrix::from(&CooMatrix::from_triplets(
            3,
            3,
            [(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0), (2, 1, 5.0)],
        ))
    }

    #[test]
    fn conversion_preserves_structure() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(m.row(2).collect::<Vec<_>>(), vec![(0, 4.0), (1, 5.0)]);
    }

    #[test]
    fn multiply_matches_dense_reference() {
        let coo = CooMatrix::from_triplets(
            3,
            3,
            [(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0), (2, 1, 5.0)],
        );
        let csr = CsrMatrix::from(&coo);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(csr.multiply(&x), coo.multiply_dense(&x));
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        let back = m.transpose().transpose();
        let x = [1.0, -1.0, 0.5];
        assert_eq!(m.multiply(&x), back.multiply(&x));
    }

    #[test]
    fn empty_rows_are_represented() {
        let m = CsrMatrix::from(&CooMatrix::from_triplets(3, 3, [(2, 2, 7.0)]));
        assert_eq!(m.row(0).count(), 0);
        assert_eq!(m.row(1).count(), 0);
        assert_eq!(m.multiply(&[0.0, 0.0, 2.0]), vec![0.0, 0.0, 14.0]);
    }
}
