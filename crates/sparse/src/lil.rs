//! List-of-lists (LIL) format (paper Sec. IV-D).
//!
//! The paper streams sparse matrices to FAFNIR in LIL: the non-zeros are
//! compressed along one dimension and carry explicit indices in the other,
//! which makes it trivial to split a large matrix into chunks along the
//! *non-compressed* dimension for parallel streaming. We compress along
//! columns — one sorted `(row, value)` list per column — so a column chunk
//! is exactly the slice of the operand vector it needs, and each leaf PE
//! can stream `value × x[col]` products in row order.

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;

/// A LIL sparse matrix: one row-sorted `(row, value)` list per column.
///
/// # Examples
///
/// ```
/// use fafnir_sparse::{CooMatrix, LilMatrix};
///
/// let coo = CooMatrix::from_triplets(2, 2, [(0, 0, 1.0), (1, 1, 2.0)]);
/// let lil = LilMatrix::from(&coo);
/// assert_eq!(lil.multiply(&[3.0, 4.0]), vec![3.0, 8.0]);
/// assert_eq!(lil.column_chunks(1).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LilMatrix {
    rows: usize,
    columns: Vec<Vec<(usize, f64)>>,
}

impl LilMatrix {
    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.columns.len()
    }

    /// Stored entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.columns.iter().map(Vec::len).sum()
    }

    /// One column's `(row, value)` list, sorted by row.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of bounds.
    #[must_use]
    pub fn column(&self, col: usize) -> &[(usize, f64)] {
        &self.columns[col]
    }

    /// Iterates over column chunks of `chunk_cols` columns each — the
    /// paper's splitting through the non-compressed dimension (Fig. 8's
    /// rounds).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_cols` is zero.
    pub fn column_chunks(&self, chunk_cols: usize) -> impl Iterator<Item = LilChunk<'_>> {
        assert!(chunk_cols > 0, "chunk size must be non-zero");
        let total = self.cols();
        (0..total.div_ceil(chunk_cols)).map(move |chunk| {
            let start = chunk * chunk_cols;
            let end = (start + chunk_cols).min(total);
            LilChunk { matrix: self, start, end }
        })
    }

    /// Sparse matrix–vector product (reference path through LIL).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols(), "operand length mismatch");
        let mut y = vec![0.0; self.rows];
        for (col, list) in self.columns.iter().enumerate() {
            let scale = x[col];
            for &(row, value) in list {
                y[row] += value * scale;
            }
        }
        y
    }
}

impl From<&CooMatrix> for LilMatrix {
    fn from(coo: &CooMatrix) -> Self {
        let mut columns = vec![Vec::new(); coo.cols()];
        for &(row, col, value) in coo.entries() {
            columns[col].push((row, value));
        }
        for list in &mut columns {
            list.sort_by_key(|&(row, _)| row);
        }
        Self { rows: coo.rows(), columns }
    }
}

/// A view of a consecutive column range of a [`LilMatrix`].
#[derive(Debug, Clone, Copy)]
pub struct LilChunk<'a> {
    matrix: &'a LilMatrix,
    start: usize,
    end: usize,
}

impl<'a> LilChunk<'a> {
    /// First column (inclusive).
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Last column (exclusive).
    #[must_use]
    pub fn end(&self) -> usize {
        self.end
    }

    /// Columns in the chunk.
    #[must_use]
    pub fn width(&self) -> usize {
        self.end - self.start
    }

    /// Non-zeros in the chunk.
    #[must_use]
    pub fn nnz(&self) -> usize {
        (self.start..self.end).map(|col| self.matrix.column(col).len()).sum()
    }

    /// Iterates the chunk's columns as `(col, list)` pairs.
    pub fn columns(&self) -> impl Iterator<Item = (usize, &'a [(usize, f64)])> + '_ {
        (self.start..self.end).map(move |col| (col, self.matrix.column(col)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (CooMatrix, LilMatrix) {
        let coo = CooMatrix::from_triplets(
            3,
            4,
            [(0, 0, 1.0), (2, 0, 4.0), (0, 2, 2.0), (1, 2, 3.0), (2, 3, 5.0)],
        );
        let lil = LilMatrix::from(&coo);
        (coo, lil)
    }

    #[test]
    fn columns_are_row_sorted() {
        let (_, lil) = sample();
        assert_eq!(lil.column(0), &[(0, 1.0), (2, 4.0)]);
        assert_eq!(lil.column(1), &[]);
        assert_eq!(lil.column(2), &[(0, 2.0), (1, 3.0)]);
        assert_eq!(lil.nnz(), 5);
    }

    #[test]
    fn multiply_matches_dense_reference() {
        let (coo, lil) = sample();
        let x = [1.0, 9.0, 2.0, 0.5];
        assert_eq!(lil.multiply(&x), coo.multiply_dense(&x));
    }

    #[test]
    fn chunks_cover_all_columns_without_overlap() {
        let (_, lil) = sample();
        let chunks: Vec<_> = lil.column_chunks(3).collect();
        assert_eq!(chunks.len(), 2);
        assert_eq!((chunks[0].start(), chunks[0].end()), (0, 3));
        assert_eq!((chunks[1].start(), chunks[1].end()), (3, 4));
        assert_eq!(chunks.iter().map(LilChunk::nnz).sum::<usize>(), lil.nnz());
        assert_eq!(chunks[1].width(), 1);
    }

    #[test]
    fn chunk_columns_expose_offsets() {
        let (_, lil) = sample();
        let chunk = lil.column_chunks(2).nth(1).unwrap();
        let cols: Vec<usize> = chunk.columns().map(|(col, _)| col).collect();
        assert_eq!(cols, vec![2, 3]);
    }
}
