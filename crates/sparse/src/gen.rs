//! Synthetic sparse-matrix generators.
//!
//! The paper's Fig. 14 evaluates SpMV workloads from scientific computing
//! and graph analytics (SuiteSparse-style inputs we do not ship). These
//! generators span the same axes — size, density, and degree skew:
//!
//! * [`uniform`] — Erdős–Rényi-style uniform sparsity (scientific kernels),
//! * [`rmat`] — R-MAT power-law graphs (graph analytics),
//! * [`banded`] — banded diagonal-dominant systems (PDE/solver matrices).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::coo::CooMatrix;

/// Uniformly random matrix with an expected `density` fraction of non-zeros.
///
/// # Panics
///
/// Panics if `density` is outside `(0, 1]` or dimensions are zero.
#[must_use]
pub fn uniform(rows: usize, cols: usize, density: f64, seed: u64) -> CooMatrix {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let target = ((rows as f64 * cols as f64) * density).round().max(1.0) as usize;
    let mut triplets = Vec::with_capacity(target);
    for _ in 0..target {
        triplets.push((rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-1.0..1.0)));
    }
    CooMatrix::from_triplets(rows, cols, triplets)
}

/// R-MAT power-law graph adjacency matrix with `nnz` expected edges and the
/// canonical `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` partition weights.
///
/// # Panics
///
/// Panics if `scale` is zero (the matrix is `2^scale × 2^scale`).
#[must_use]
pub fn rmat(scale: u32, nnz: usize, seed: u64) -> CooMatrix {
    assert!(scale > 0, "scale must be non-zero");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let (a, b, c) = (0.57, 0.19, 0.19);
    let mut triplets = Vec::with_capacity(nnz);
    for _ in 0..nnz {
        let (mut row, mut col) = (0usize, 0usize);
        for level in (0..scale).rev() {
            let bit = 1usize << level;
            let p: f64 = rng.gen();
            if p < a {
                // top-left
            } else if p < a + b {
                col |= bit;
            } else if p < a + b + c {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        triplets.push((row, col, rng.gen_range(0.1..1.0)));
    }
    CooMatrix::from_triplets(n, n, triplets)
}

/// Banded matrix with `bandwidth` off-diagonals on each side and a dominant
/// diagonal (a Jacobi-friendly solver matrix).
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn banded(n: usize, bandwidth: usize, seed: u64) -> CooMatrix {
    assert!(n > 0, "dimension must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for row in 0..n {
        let mut off_diagonal_sum = 0.0;
        let low = row.saturating_sub(bandwidth);
        let high = (row + bandwidth).min(n - 1);
        for col in low..=high {
            if col != row {
                let value = rng.gen_range(-0.5..0.5);
                off_diagonal_sum += f64::abs(value);
                triplets.push((row, col, value));
            }
        }
        // Strict diagonal dominance guarantees Jacobi convergence.
        triplets.push((row, row, off_diagonal_sum + rng.gen_range(1.0..2.0)));
    }
    CooMatrix::from_triplets(n, n, triplets)
}

/// Symmetric positive-definite banded matrix (`A = B + Bᵀ` off-diagonal
/// structure with a dominance-boosted diagonal), the input class for
/// conjugate-gradient solvers (the paper's "differential-equation solvers"
/// direction, Sec. VIII).
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn spd_banded(n: usize, bandwidth: usize, seed: u64) -> CooMatrix {
    assert!(n > 0, "dimension must be non-zero");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    let mut row_abs_sum = vec![0.0f64; n];
    for row in 0..n {
        for col in row + 1..=(row + bandwidth).min(n - 1) {
            let value: f64 = rng.gen_range(-0.5..0.5);
            triplets.push((row, col, value));
            triplets.push((col, row, value));
            row_abs_sum[row] += value.abs();
            row_abs_sum[col] += value.abs();
        }
    }
    for (row, &sum) in row_abs_sum.iter().enumerate() {
        // Strict diagonal dominance of a symmetric matrix ⇒ SPD.
        triplets.push((row, row, sum + rng.gen_range(0.5..1.5)));
    }
    CooMatrix::from_triplets(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_hits_requested_density() {
        let m = uniform(100, 100, 0.05, 1);
        // Duplicates merge, so nnz ≤ target; should be close for low density.
        assert!(m.nnz() > 400 && m.nnz() <= 500, "nnz {}", m.nnz());
        assert_eq!(m.rows(), 100);
    }

    #[test]
    fn rmat_is_skewed() {
        let m = rmat(8, 2000, 2);
        assert_eq!(m.rows(), 256);
        // Power-law: the busiest row holds far more than the mean.
        let mut row_counts = vec![0usize; m.rows()];
        for &(row, _, _) in m.entries() {
            row_counts[row] += 1;
        }
        let max = *row_counts.iter().max().unwrap();
        let mean = m.nnz() as f64 / m.rows() as f64;
        assert!(max as f64 > 3.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn banded_is_diagonally_dominant() {
        let m = banded(50, 2, 3);
        let mut diag = vec![0.0; 50];
        let mut off = vec![0.0; 50];
        for &(row, col, value) in m.entries() {
            if row == col {
                diag[row] = value.abs();
            } else {
                off[row] += value.abs();
            }
        }
        for row in 0..50 {
            assert!(diag[row] > off[row], "row {row} not dominant");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(20, 20, 0.1, 9), uniform(20, 20, 0.1, 9));
        assert_eq!(rmat(5, 100, 9).nnz(), rmat(5, 100, 9).nnz());
        assert_eq!(banded(10, 1, 9), banded(10, 1, 9));
    }

    #[test]
    fn spd_banded_is_symmetric_and_dominant() {
        let m = spd_banded(40, 3, 5);
        let mut dense = vec![vec![0.0; 40]; 40];
        for &(row, col, value) in m.entries() {
            dense[row][col] = value;
        }
        for (i, row) in dense.iter().enumerate() {
            for (j, &value) in row.iter().enumerate() {
                assert!((value - dense[j][i]).abs() < 1e-12, "asymmetric at ({i},{j})");
            }
            let off: f64 =
                row.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, v)| v.abs()).sum();
            assert!(row[i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn banded_edge_rows_stay_in_bounds() {
        let m = banded(5, 3, 4);
        for &(row, col, _) in m.entries() {
            assert!(row < 5 && col < 5);
        }
    }
}
