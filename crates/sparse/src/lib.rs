//! # fafnir-sparse — sparse-matrix substrate and SpMV engines
//!
//! FAFNIR's second application domain (paper Sec. IV-D): SpMV on the same
//! reduction-tree hardware, using vectorization and the LIL compression
//! format. This crate provides everything that side of the paper needs:
//!
//! * [`coo`], [`csr`], [`lil`] — sparse formats with conversions;
//! * [`mtx`] — Matrix Market I/O, so real SuiteSparse inputs drop in;
//! * [`gen`] — synthetic matrix generators spanning Fig. 14's workload axes
//!   (uniform scientific, R-MAT graphs, banded solver systems);
//! * [`stream`] — row-sorted partial-result streams and their tree merge,
//!   the SpMV-mode dataflow of the PEs;
//! * [`iteration`] — the iterations/rounds plan of Figs. 8–9;
//! * [`fafnir_spmv`] — the FAFNIR SpMV engine (functional + timed);
//! * [`two_step`] — the state-of-the-art Two-Step NDP baseline;
//! * [`dram_stream`] — physical grounding of the timing constants against
//!   measured DRAM streaming and tree-ingestion bounds;
//! * [`analysis`] — structural matrix profiles (degree skew, bandwidth,
//!   symmetry) behind Fig. 14's suitability commentary;
//! * [`partition`] — load-balanced 1D/2D SpMV partitioning across ranks
//!   (row-block, nnz-balanced, column-block, grid) with an explicit
//!   synchronization stage, real-PIM style;
//! * [`report`] — the partitioned-SpMV report (imbalance, sync, speedup);
//! * [`spmm`] — sparse × dense-matrix products (matrix algebra);
//! * [`apps`] — Jacobi/conjugate-gradient solvers and PageRank built on the
//!   engines.
//!
//! ```
//! use fafnir_sparse::{gen, fafnir_spmv, lil::LilMatrix};
//!
//! let matrix = LilMatrix::from(&gen::uniform(256, 256, 0.05, 1));
//! let x = vec![1.0; 256];
//! let run = fafnir_spmv::execute(&matrix, &x, 2048);
//! assert_eq!(run.y.len(), 256);
//! println!("{} multiplies, {} iterations", run.ops.multiplies, run.plan.iterations());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod apps;
pub mod coo;
pub mod csr;
pub mod dram_stream;
pub mod fafnir_spmv;
pub mod gen;
pub mod iteration;
pub mod lil;
pub mod mtx;
pub mod partition;
pub mod report;
pub mod spmm;
pub mod stream;
pub mod two_step;

pub use analysis::MatrixProfile;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use fafnir_spmv::{SpmvRun, SpmvStreamRun, SpmvTiming};
pub use iteration::SpmvPlan;
pub use lil::LilMatrix;
pub use partition::{
    execute_partitioned, stream_partitioned, PartitionStrategy, PartitionedRun, RankRun, RankSpan,
    SpmvPartition,
};
pub use report::PartitionReport;
pub use stream::{PartialStream, StreamOps};
