//! Physical grounding of the SpMV timing constants.
//!
//! [`crate::SpmvTiming`]'s per-entry costs are calibrated to Fig. 14's
//! ratios; this module checks they are *physically realizable* against the
//! two hard bounds of the machine:
//!
//! 1. **DRAM streaming** — LIL entries stream sequentially from all ranks'
//!    own NDP ports; the per-entry time is measured by driving the actual
//!    `fafnir-mem` simulator with a block-sequential read pattern.
//! 2. **Tree ingestion** — each leaf PE consumes one SIMD-vectorized group
//!    of entries per NDP cycle (Fig. 7c's vectorization).
//!
//! A calibrated constant below either bound would promise impossible
//! hardware; the tests pin `fafnir_multiply_ns` above both.

use fafnir_core::PeTiming;
use fafnir_mem::{Location, MemoryConfig, MemorySystem};

use crate::fafnir_spmv::SpmvTiming;

/// Bytes per streamed LIL entry: an f64 value plus a u32 row index.
pub const ENTRY_BYTES: usize = 12;

/// Measures the DRAM streaming bound by reading `blocks_per_rank` 512-byte
/// blocks sequentially from every rank (block-sequential = row streaming)
/// and dividing by the entries moved.
///
/// # Panics
///
/// Panics if `blocks_per_rank` is zero.
#[must_use]
pub fn measured_stream_bound_ns_per_entry(mem_config: MemoryConfig, blocks_per_rank: usize) -> f64 {
    assert!(blocks_per_rank > 0, "need at least one block per rank");
    let mut config = mem_config;
    config.ndp_data_path = true; // leaf PEs read over rank ports
    let mut memory = MemorySystem::new(config);
    let topology = config.topology;
    let blocks_per_row = topology.row_bytes() / 512;
    for channel in 0..topology.channels {
        for rank in 0..topology.ranks_per_channel() {
            for block in 0..blocks_per_rank {
                // Walk banks round-robin, rows sequentially: the streaming
                // layout a chunked LIL occupies.
                let banks = topology.banks_per_rank();
                let flat_bank = block % banks;
                let slot = block / banks;
                let location = Location {
                    channel,
                    rank,
                    bank_group: flat_bank / topology.banks_per_group,
                    bank: flat_bank % topology.banks_per_group,
                    row: slot / blocks_per_row.max(1) % topology.rows,
                    column: (slot % blocks_per_row.max(1)) * (512 / topology.burst_bytes),
                };
                memory.submit_read_at(location, 512, 0);
            }
        }
    }
    let done = memory.run_until_idle();
    let total_ns = config.timing.cycles_to_ns(done);
    let total_entries = (topology.total_ranks() * blocks_per_rank * 512 / ENTRY_BYTES) as f64;
    total_ns / total_entries
}

/// The tree-ingestion bound: `leaves` leaf PEs each consume `simd_lanes`
/// entries per NDP cycle.
///
/// # Panics
///
/// Panics if `leaves` or `simd_lanes` is zero.
#[must_use]
pub fn tree_ingest_bound_ns_per_entry(timing: &PeTiming, leaves: usize, simd_lanes: usize) -> f64 {
    assert!(leaves > 0 && simd_lanes > 0, "tree shape must be non-degenerate");
    timing.cycle_ns() / (leaves * simd_lanes) as f64
}

/// Consistency report of a timing calibration against the machine bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingValidation {
    /// Measured DRAM streaming bound (ns per entry).
    pub dram_bound: f64,
    /// Tree ingestion bound (ns per entry).
    pub tree_bound: f64,
    /// The calibrated multiply-phase constant under test.
    pub calibrated: f64,
}

impl TimingValidation {
    /// Runs both bounds for the paper's system and a timing set.
    #[must_use]
    pub fn paper_system(timing: &SpmvTiming) -> Self {
        let dram_bound = measured_stream_bound_ns_per_entry(MemoryConfig::ddr4_2400_4ch(), 64);
        // 16 leaf PEs at 1PE:2R, 16-lane vectorized entry ingestion.
        let tree_bound = tree_ingest_bound_ns_per_entry(&PeTiming::fpga_200mhz(), 16, 16);
        Self { dram_bound, tree_bound, calibrated: timing.fafnir_multiply_ns }
    }

    /// True when the calibrated constant does not promise more than the
    /// hardware can deliver.
    #[must_use]
    pub fn is_realizable(&self) -> bool {
        self.calibrated >= self.dram_bound.max(self.tree_bound) * 0.99
    }
}

/// A small SpMV executed *end to end* against the DRAM simulator: the LIL
/// entries stream from the ranks as 512-byte block reads through
/// `fafnir-mem`, the functional result comes from
/// [`crate::fafnir_spmv::execute`], and the returned time is the measured
/// streaming completion plus the tree's ingestion/depth costs. Used to
/// cross-validate the analytic [`SpmvTiming`] on concrete inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulatedSpmv {
    /// The product vector.
    pub y: Vec<f64>,
    /// Measured DRAM streaming time (ns).
    pub stream_ns: f64,
    /// Tree ingestion + depth time (ns).
    pub tree_ns: f64,
    /// Total simulated time (ns).
    pub total_ns: f64,
    /// The analytic model's estimate for the same run (ns).
    pub analytic_ns: f64,
}

/// Runs `y = A·x` with the memory phase simulated by `fafnir-mem`.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `vector_size` is zero.
#[must_use]
pub fn execute_simulated(
    matrix: &crate::lil::LilMatrix,
    x: &[f64],
    vector_size: usize,
    mem_config: MemoryConfig,
    timing: &SpmvTiming,
) -> SimulatedSpmv {
    let run = crate::fafnir_spmv::execute(matrix, x, vector_size);

    // Stream the matrix: nnz entries × 12 B, packed into 512 B blocks,
    // distributed round-robin over the ranks.
    let mut config = mem_config;
    config.ndp_data_path = true;
    let topology = config.topology;
    let total_blocks = (matrix.nnz() * ENTRY_BYTES).div_ceil(512).max(1);
    let ranks = topology.total_ranks();
    let mut memory = fafnir_mem::MemorySystem::new(config);
    let blocks_per_row = (topology.row_bytes() / 512).max(1);
    for block in 0..total_blocks {
        let global_rank = block % ranks;
        let slot = block / ranks;
        let banks = topology.banks_per_rank();
        let flat_bank = slot % banks;
        let inner = slot / banks;
        let location = Location {
            channel: global_rank / topology.ranks_per_channel(),
            rank: global_rank % topology.ranks_per_channel(),
            bank_group: flat_bank / topology.banks_per_group,
            bank: flat_bank % topology.banks_per_group,
            row: (inner / blocks_per_row) % topology.rows,
            column: (inner % blocks_per_row) * (512 / topology.burst_bytes),
        };
        memory.submit_read_at(location, 512, 0);
    }
    // Result write-back: the root writes y (8 B per row entry) back to
    // memory, interleaved over the channels.
    let y_bytes = matrix.rows() * 8;
    for block in 0..y_bytes.div_ceil(512) {
        let addr = (topology.capacity_bytes() / 2) + block as u64 * 512;
        memory.submit(fafnir_mem::Request::write(addr, 512));
    }
    let done = memory.run_until_idle();
    let stream_ns = config.timing.cycles_to_ns(done);

    // Tree side: leaves ingest the streamed entries (vectorized), plus the
    // pipeline depth and merge-iteration volumes at the ingest rate.
    let pe_timing = PeTiming::fpga_200mhz();
    let leaves = (ranks / 2).max(1);
    let ingest = tree_ingest_bound_ns_per_entry(&pe_timing, leaves, 16);
    let depth_ns = (leaves as f64).log2().ceil().max(1.0) * pe_timing.reduce_latency_ns();
    let merge_entries: u64 = run.volumes[1..].iter().sum();
    let tree_ns = run.volumes[0] as f64 * ingest
        + merge_entries as f64 * ingest * 3.0
        + depth_ns * run.plan.total_rounds() as f64;

    // Streaming and tree ingestion overlap (the tree consumes as data
    // arrives); the slower of the two sets the pace.
    let total_ns = stream_ns.max(tree_ns);
    SimulatedSpmv {
        y: run.y.clone(),
        stream_ns,
        tree_ns,
        total_ns,
        analytic_ns: timing.fafnir_ns(&run),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_streaming_is_fast_and_row_hit_dominated() {
        let bound = measured_stream_bound_ns_per_entry(MemoryConfig::ddr4_2400_4ch(), 32);
        // 32 ranks streaming on their own ports, bounded by the shared
        // per-channel command bus: ≈0.14 ns per 12-byte entry — and the
        // calibrated multiply constant (0.16) sits just above it.
        assert!(bound > 0.05 && bound < 0.2, "bound {bound} ns/entry");
    }

    #[test]
    fn fewer_ranks_stream_slower() {
        let wide = measured_stream_bound_ns_per_entry(MemoryConfig::ddr4_2400_4ch(), 32);
        let narrow = measured_stream_bound_ns_per_entry(MemoryConfig::with_total_ranks(2), 32);
        assert!(narrow > 4.0 * wide, "2 ranks {narrow} vs 32 ranks {wide}");
    }

    #[test]
    fn tree_bound_scales_with_leaves_and_lanes() {
        let timing = PeTiming::fpga_200mhz();
        let narrow = tree_ingest_bound_ns_per_entry(&timing, 4, 1);
        let wide = tree_ingest_bound_ns_per_entry(&timing, 16, 16);
        assert!((narrow / wide - 64.0).abs() < 1e-9);
    }

    #[test]
    fn simulated_spmv_matches_reference_and_brackets_the_analytic_model() {
        let coo = crate::gen::uniform(512, 512, 0.02, 91);
        let lil = crate::lil::LilMatrix::from(&coo);
        let x: Vec<f64> = (0..512).map(|i| 1.0 + (i % 5) as f64).collect();
        let timing = SpmvTiming::paper();
        let simulated = execute_simulated(&lil, &x, 2048, MemoryConfig::ddr4_2400_4ch(), &timing);
        // Functional equality with the dense reference.
        let want = coo.multiply_dense(&x);
        for (a, b) in simulated.y.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9);
        }
        // The write path really ran: y occupies rows × 8 B of writes.
        // (write bursts are counted in the simulated stream time.)
        // The measured total and the analytic estimate agree within an
        // order of magnitude (they model the same machine).
        let ratio = simulated.total_ns / simulated.analytic_ns;
        assert!(
            (0.1..10.0).contains(&ratio),
            "simulated {:.0} ns vs analytic {:.0} ns",
            simulated.total_ns,
            simulated.analytic_ns
        );
        assert!(simulated.stream_ns > 0.0 && simulated.tree_ns > 0.0);
    }

    #[test]
    fn paper_calibration_is_physically_realizable() {
        let validation = TimingValidation::paper_system(&SpmvTiming::paper());
        assert!(
            validation.is_realizable(),
            "calibrated {} vs dram {} / tree {}",
            validation.calibrated,
            validation.dram_bound,
            validation.tree_bound
        );
        // And it is not absurdly conservative either: within ~20x of the
        // binding constraint.
        let binding = validation.dram_bound.max(validation.tree_bound);
        assert!(validation.calibrated < 20.0 * binding);
    }
}
