//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's Fig. 14 workloads come from SuiteSparse-style collections,
//! which are distributed in the Matrix Market exchange format. This module
//! reads and writes the `coordinate` flavour (general, symmetric, and
//! skew-symmetric; `real`, `integer`, and `pattern` fields), so real inputs
//! can replace the synthetic generators without code changes:
//!
//! ```text
//! %%MatrixMarket matrix coordinate real general
//! % comments…
//! rows cols nnz
//! row col value        (1-based indices)
//! ```

use crate::coo::CooMatrix;

/// Error reading a Matrix Market file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtxError {
    /// 1-based line number (0 for structural errors like a missing header).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl MtxError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self { line, message: message.into() }
    }
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mtx line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MtxError {}

/// Symmetry declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
    SkewSymmetric,
}

/// Value field declared in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

/// Parses Matrix Market `coordinate` text into a [`CooMatrix`].
///
/// Symmetric and skew-symmetric inputs are expanded to their full (general)
/// form; `pattern` entries get value 1.0.
///
/// # Examples
///
/// ```
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 3.5\n";
/// let matrix = fafnir_sparse::mtx::parse(text)?;
/// assert_eq!(matrix.entries(), &[(0, 1, 3.5)]);
/// # Ok::<(), fafnir_sparse::mtx::MtxError>(())
/// ```
///
/// # Errors
///
/// Returns [`MtxError`] naming the offending line for malformed headers,
/// counts, indices out of range, or unsupported flavours (`array`,
/// `complex`, `hermitian`).
pub fn parse(text: &str) -> Result<CooMatrix, MtxError> {
    let mut lines = text.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (_, header) = lines.next().ok_or_else(|| MtxError::new(0, "empty input"))?;
    let tokens: Vec<String> = header.split_whitespace().map(str::to_ascii_lowercase).collect();
    if tokens.len() != 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(MtxError::new(1, "expected `%%MatrixMarket matrix coordinate …` header"));
    }
    if tokens[2] != "coordinate" {
        return Err(MtxError::new(
            1,
            format!("unsupported format `{}` (only coordinate)", tokens[2]),
        ));
    }
    let field = match tokens[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => return Err(MtxError::new(1, format!("unsupported field `{other}`"))),
    };
    let symmetry = match tokens[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        "skew-symmetric" => Symmetry::SkewSymmetric,
        other => return Err(MtxError::new(1, format!("unsupported symmetry `{other}`"))),
    };

    // Size line: first non-comment line.
    let mut size: Option<(usize, usize, usize)> = None;
    let mut size_line = 0;
    for (number, line) in lines.by_ref() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(MtxError::new(number + 1, "size line must be `rows cols nnz`"));
        }
        let parse_dim = |token: &str| -> Result<usize, MtxError> {
            token
                .parse()
                .map_err(|_| MtxError::new(number + 1, format!("`{token}` is not a count")))
        };
        size = Some((parse_dim(parts[0])?, parse_dim(parts[1])?, parse_dim(parts[2])?));
        size_line = number + 1;
        break;
    }
    let (rows, cols, nnz) = size.ok_or_else(|| MtxError::new(0, "missing size line"))?;
    if rows == 0 || cols == 0 {
        return Err(MtxError::new(size_line, "matrix dimensions must be non-zero"));
    }
    // Mirrored (col, row) entries are only meaningful on square matrices;
    // on a non-square size line they would land out of bounds and panic in
    // `CooMatrix::push` instead of surfacing a proper parse error.
    if symmetry != Symmetry::General && rows != cols {
        let flavour = if symmetry == Symmetry::Symmetric { "symmetric" } else { "skew-symmetric" };
        return Err(MtxError::new(
            size_line,
            format!("{flavour} matrices must be square, got {rows} x {cols}"),
        ));
    }

    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(nnz);
    let mut seen = 0usize;
    for (number, line) in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let expected = if field == Field::Pattern { 2 } else { 3 };
        if parts.len() != expected {
            return Err(MtxError::new(
                number + 1,
                format!("expected {expected} fields, got {}", parts.len()),
            ));
        }
        let row: usize = parts[0]
            .parse()
            .map_err(|_| MtxError::new(number + 1, format!("bad row `{}`", parts[0])))?;
        let col: usize = parts[1]
            .parse()
            .map_err(|_| MtxError::new(number + 1, format!("bad col `{}`", parts[1])))?;
        if row == 0 || col == 0 || row > rows || col > cols {
            return Err(MtxError::new(
                number + 1,
                format!("entry ({row},{col}) outside 1..={rows} x 1..={cols}"),
            ));
        }
        let value = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => parts[2]
                .parse::<f64>()
                .map_err(|_| MtxError::new(number + 1, format!("bad value `{}`", parts[2])))?,
        };
        let (row, col) = (row - 1, col - 1);
        triplets.push((row, col, value));
        match symmetry {
            Symmetry::General => {}
            Symmetry::Symmetric if row != col => triplets.push((col, row, value)),
            Symmetry::SkewSymmetric if row != col => triplets.push((col, row, -value)),
            _ => {}
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(MtxError::new(0, format!("size line declared {nnz} entries, found {seen}")));
    }
    Ok(CooMatrix::from_triplets(rows, cols, triplets))
}

/// Reads a `.mtx` file from disk.
///
/// # Errors
///
/// Returns [`MtxError`] for I/O failures (line 0) or parse errors.
pub fn read_file(path: &std::path::Path) -> Result<CooMatrix, MtxError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| MtxError::new(0, format!("cannot read {}: {e}", path.display())))?;
    parse(&text)
}

/// Serializes a matrix as Matrix Market `coordinate real general` text.
#[must_use]
pub fn write(matrix: &CooMatrix) -> String {
    let mut out = String::from("%%MatrixMarket matrix coordinate real general\n");
    out.push_str("% written by the fafnir reproduction\n");
    out.push_str(&format!("{} {} {}\n", matrix.rows(), matrix.cols(), matrix.nnz()));
    for &(row, col, value) in matrix.entries() {
        out.push_str(&format!("{} {} {value}\n", row + 1, col + 1));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
%%MatrixMarket matrix coordinate real general
% a 3x3 example
3 3 4
1 1 1.5
2 3 -2.0
3 1 0.25
3 3 4.0
";

    #[test]
    fn parses_general_real_coordinate() {
        let matrix = parse(SAMPLE).unwrap();
        assert_eq!(matrix.rows(), 3);
        assert_eq!(matrix.nnz(), 4);
        assert_eq!(matrix.entries(), &[(0, 0, 1.5), (1, 2, -2.0), (2, 0, 0.25), (2, 2, 4.0)]);
    }

    #[test]
    fn round_trips_through_write() {
        let matrix = parse(SAMPLE).unwrap();
        let again = parse(&write(&matrix)).unwrap();
        assert_eq!(matrix, again);
    }

    #[test]
    fn expands_symmetric_storage() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 3.0
2 1 5.0
";
        let matrix = parse(text).unwrap();
        assert_eq!(matrix.nnz(), 3, "off-diagonal mirrored");
        assert_eq!(matrix.entries(), &[(0, 0, 3.0), (0, 1, 5.0), (1, 0, 5.0)]);
    }

    #[test]
    fn expands_skew_symmetric_with_negation() {
        let text = "\
%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 4.0
";
        let matrix = parse(text).unwrap();
        assert_eq!(matrix.entries(), &[(0, 1, -4.0), (1, 0, 4.0)]);
    }

    #[test]
    fn non_square_symmetric_inputs_error_instead_of_panicking() {
        // Regression: the mirrored (col, row) entry was never bounds-checked
        // against the transposed orientation, so a 3x2 symmetric input with
        // an entry in row 3 asserted inside `CooMatrix::push`.
        let symmetric = "\
%%MatrixMarket matrix coordinate real symmetric
3 2 1
3 1 4.0
";
        let error = parse(symmetric).unwrap_err();
        assert_eq!(error.line, 2, "the size line is the offender");
        assert!(error.message.contains("square"), "{error}");
        assert!(error.message.contains("3 x 2"), "{error}");

        let skew = "\
%%MatrixMarket matrix coordinate real skew-symmetric
2 3 1
1 3 4.0
";
        let error = parse(skew).unwrap_err();
        assert_eq!(error.line, 2);
        assert!(error.message.contains("skew-symmetric"), "{error}");
    }

    #[test]
    fn pattern_entries_get_unit_values() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 3
";
        let matrix = parse(text).unwrap();
        assert_eq!(matrix.entries(), &[(0, 1, 1.0), (1, 2, 1.0)]);
    }

    #[test]
    fn errors_name_the_line() {
        assert!(parse("").is_err());
        let bad_header = parse("%%MatrixMarket matrix array real general\n2 2 1\n1 1 1\n");
        assert!(bad_header.unwrap_err().message.contains("array"));
        let bad_entry = "\
%%MatrixMarket matrix coordinate real general
2 2 1
3 1 1.0
";
        let error = parse(bad_entry).unwrap_err();
        assert_eq!(error.line, 3);
        assert!(error.message.contains("outside"));
        let short = "\
%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.0
";
        assert!(parse(short).unwrap_err().message.contains("declared 2"));
    }

    #[test]
    fn file_round_trip() {
        let matrix = parse(SAMPLE).unwrap();
        let path = std::env::temp_dir().join("fafnir-mtx-test.mtx");
        std::fs::write(&path, write(&matrix)).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, matrix);
        std::fs::remove_file(&path).ok();
        assert!(read_file(std::path::Path::new("/nonexistent.mtx")).is_err());
    }

    #[test]
    fn parsed_matrix_runs_through_the_engines() {
        let matrix = parse(SAMPLE).unwrap();
        let lil = crate::lil::LilMatrix::from(&matrix);
        let x = vec![1.0, 2.0, 3.0];
        let run = crate::fafnir_spmv::execute(&lil, &x, 2048);
        assert_eq!(run.y, matrix.multiply_dense(&x));
    }
}
