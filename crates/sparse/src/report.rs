//! The partitioned-SpMV report: load, imbalance, sync volume, speedup.
//!
//! This is the record the CLI prints and the benchmark sweep serializes —
//! one partitioned run priced against its unpartitioned serial baseline,
//! with the two imbalance factors (nonzero load and modeled time, both
//! max/mean like `ClusterReport`) and the synchronization stage broken out.

use crate::fafnir_spmv::{SpmvRun, SpmvTiming};
use crate::partition::PartitionedRun;

/// Everything worth reporting about one partitioned SpMV.
///
/// # Examples
///
/// ```
/// use fafnir_sparse::{
///     execute_partitioned, fafnir_spmv, gen, LilMatrix, PartitionReport, PartitionStrategy,
///     SpmvPartition, SpmvTiming,
/// };
///
/// let matrix = gen::banded(512, 4, 1);
/// let x = vec![1.0; matrix.cols()];
/// let partition = SpmvPartition::new(&matrix, PartitionStrategy::NnzBalancedRows, 4);
/// let run = execute_partitioned(&matrix, &x, &partition, 32);
/// let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, 32);
/// let report =
///     PartitionReport::new(&run, &serial, &SpmvTiming::paper(), &matrix.multiply_dense(&x));
/// assert!(report.speedup > 1.0);
/// assert!(report.max_abs_error < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionReport {
    /// Strategy name (`row`, `nnz`, `col`, `grid`).
    pub strategy: String,
    /// Rank count.
    pub ranks: usize,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Matrix nonzeros.
    pub nnz: usize,
    /// Nonzeros per rank.
    pub per_rank_nnz: Vec<u64>,
    /// Modeled time per rank in nanoseconds.
    pub per_rank_ns: Vec<f64>,
    /// Nonzero-load imbalance factor (max/mean, 1.0 = perfect).
    pub nnz_imbalance: f64,
    /// Modeled-time imbalance factor (max/mean).
    pub time_imbalance: f64,
    /// Partial entries that crossed a partition boundary.
    pub sync_entries: u64,
    /// Modeled synchronization-stage time in nanoseconds.
    pub sync_ns: f64,
    /// Modeled parallel time: slowest rank plus synchronization.
    pub parallel_ns: f64,
    /// Modeled unpartitioned time of the same problem.
    pub serial_ns: f64,
    /// `serial_ns / parallel_ns` (ideal would be `ranks`).
    pub speedup: f64,
    /// `speedup / ranks` — the fraction of ideal scaling realized.
    pub efficiency: f64,
    /// Largest absolute error against the dense reference result.
    pub max_abs_error: f64,
}

impl PartitionReport {
    /// Prices a partitioned run against its serial baseline and checks the
    /// result against a dense `reference` of the same product.
    ///
    /// # Panics
    ///
    /// Panics if `reference` and the run's result disagree in length.
    #[must_use]
    pub fn new(
        run: &PartitionedRun,
        serial: &SpmvRun,
        timing: &SpmvTiming,
        reference: &[f64],
    ) -> Self {
        assert_eq!(run.y.len(), reference.len(), "reference length mismatch");
        let parallel_ns = run.total_ns(timing);
        let serial_ns = timing.fafnir_ns(serial);
        let ranks = run.partition.ranks();
        let max_abs_error =
            run.y.iter().zip(reference).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        Self {
            strategy: run.partition.strategy.name().to_string(),
            ranks,
            rows: run.partition.rows,
            cols: run.partition.cols,
            nnz: run.partition.nnz,
            per_rank_nnz: run.rank_runs.iter().map(|r| r.nnz).collect(),
            per_rank_ns: run.rank_ns(timing),
            nnz_imbalance: run.partition.nnz_imbalance(),
            time_imbalance: run.time_imbalance(timing),
            sync_entries: run.sync_entries,
            sync_ns: run.sync_ns(timing),
            parallel_ns,
            serial_ns,
            speedup: serial_ns / parallel_ns,
            efficiency: serial_ns / parallel_ns / ranks as f64,
            max_abs_error,
        }
    }

    /// Byte-stable JSON rendering (fixed key order, fixed float widths).
    #[must_use]
    pub fn to_json(&self) -> String {
        let counts: Vec<String> = self.per_rank_nnz.iter().map(u64::to_string).collect();
        let times: Vec<String> = self.per_rank_ns.iter().map(|ns| format!("{ns:.1}")).collect();
        format!(
            "{{\n  \"strategy\": \"{}\",\n  \"ranks\": {},\n  \"rows\": {},\n  \
             \"cols\": {},\n  \"nnz\": {},\n  \"per_rank_nnz\": [{}],\n  \
             \"per_rank_ns\": [{}],\n  \"nnz_imbalance\": {:.6},\n  \
             \"time_imbalance\": {:.6},\n  \"sync_entries\": {},\n  \"sync_ns\": {:.1},\n  \
             \"parallel_ns\": {:.1},\n  \"serial_ns\": {:.1},\n  \"speedup\": {:.6},\n  \
             \"efficiency\": {:.6},\n  \"max_abs_error\": {:e}\n}}",
            self.strategy,
            self.ranks,
            self.rows,
            self.cols,
            self.nnz,
            counts.join(", "),
            times.join(", "),
            self.nnz_imbalance,
            self.time_imbalance,
            self.sync_entries,
            self.sync_ns,
            self.parallel_ns,
            self.serial_ns,
            self.speedup,
            self.efficiency,
            self.max_abs_error,
        )
    }

    /// Human-readable table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let mut row = |label: &str, value: String| {
            out.push_str(&format!("{label:<26} {value}\n"));
        };
        row("strategy", self.strategy.clone());
        row("ranks", self.ranks.to_string());
        row("matrix", format!("{}x{}, {} nnz", self.rows, self.cols, self.nnz));
        row("per-rank nnz", format!("{:?}", self.per_rank_nnz));
        row("nnz imbalance", format!("{:.3}", self.nnz_imbalance));
        row("time imbalance", format!("{:.3}", self.time_imbalance));
        row("sync entries", self.sync_entries.to_string());
        row("sync time", format!("{:.1} ns", self.sync_ns));
        row("parallel time", format!("{:.1} ns", self.parallel_ns));
        row("serial time", format!("{:.1} ns", self.serial_ns));
        row("speedup", format!("{:.2}x (ideal {}x)", self.speedup, self.ranks));
        row("efficiency", format!("{:.1} %", self.efficiency * 100.0));
        row("max abs error", format!("{:e}", self.max_abs_error));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fafnir_spmv;
    use crate::lil::LilMatrix;
    use crate::partition::{execute_partitioned, PartitionStrategy, SpmvPartition};
    use crate::{gen, SpmvTiming};

    fn report_for(strategy: PartitionStrategy, ranks: usize) -> PartitionReport {
        let matrix = gen::rmat(7, 3_000, 21);
        let x: Vec<f64> = (0..matrix.cols()).map(|i| 1.0 + (i % 5) as f64).collect();
        let partition = SpmvPartition::new(&matrix, strategy, ranks);
        let run = execute_partitioned(&matrix, &x, &partition, 32);
        let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, 32);
        PartitionReport::new(&run, &serial, &SpmvTiming::paper(), &matrix.multiply_dense(&x))
    }

    #[test]
    fn report_is_internally_consistent() {
        let report = report_for(PartitionStrategy::NnzBalancedRows, 8);
        assert_eq!(report.strategy, "nnz");
        assert_eq!(report.per_rank_nnz.len(), 8);
        assert_eq!(report.per_rank_nnz.iter().sum::<u64>(), report.nnz as u64);
        assert!(report.nnz_imbalance >= 1.0 && report.time_imbalance >= 1.0);
        assert!((report.speedup / report.ranks as f64 - report.efficiency).abs() < 1e-12);
        assert!(report.max_abs_error < 1e-9, "{}", report.max_abs_error);
        let slowest = report.per_rank_ns.iter().fold(0.0_f64, |a, &b| a.max(b));
        assert!((report.parallel_ns - (slowest + report.sync_ns)).abs() < 1e-6);
    }

    #[test]
    fn json_is_byte_stable_and_complete() {
        let report = report_for(PartitionStrategy::grid(4), 4);
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "rendering must be deterministic");
        for key in [
            "\"strategy\": \"grid\"",
            "\"ranks\": 4",
            "\"per_rank_nnz\"",
            "\"nnz_imbalance\"",
            "\"time_imbalance\"",
            "\"sync_entries\"",
            "\"speedup\"",
            "\"efficiency\"",
            "\"max_abs_error\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let table = report.render_table();
        assert!(table.contains("speedup") && table.contains("ideal 4x"));
    }
}
