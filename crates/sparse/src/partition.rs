//! Load-balanced 1D/2D SpMV partitioning across ranks (real-PIM style).
//!
//! Giannoula et al.'s real-PIM SpMV study splits the matrix across memory
//! ranks — 1D by rows or columns, 2D as a grid — balances either row count
//! or nonzero count per rank, and pays an explicit *synchronization* step
//! to reduce partial results for rows that more than one rank touches.
//! This module is that recipe over the FAFNIR tree:
//!
//! * [`SpmvPartition`] plans one of four [`PartitionStrategy`] layouts over
//!   a [`CooMatrix`], producing per-rank sub-problems (contiguous row/column
//!   windows with their nonzero loads);
//! * [`execute_partitioned`] runs every sub-problem through the existing
//!   [`crate::fafnir_spmv::execute_to_stream`] tree path (paper Sec. IV-D)
//!   and merges partial rows across ranks, counting the entries that cross
//!   a partition boundary;
//! * [`stream_partitioned`] does the same one rank at a time, so inputs
//!   larger than one rank's span never materialize more than one sub-matrix
//!   (plus the running output) at once;
//! * [`PartitionedRun`] prices the whole thing through [`SpmvTiming`]: the
//!   parallel makespan is the slowest rank plus the synchronization stage
//!   ([`SpmvTiming::sync_merge_ns`] per cross-rank entry), the way
//!   `fafnir-cluster` prices cross-shard accumulator transfer.
//!
//! Row-partitioned layouts (`RowBlock`, `NnzBalancedRows`) never overlap
//! output rows, so their merge is free; column and grid layouts trade rank
//! parallelism against cross-rank partial-row reduction.

use std::ops::Range;

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;
use crate::fafnir_spmv::{self, SpmvRun, SpmvTiming};
use crate::iteration::SpmvPlan;
use crate::lil::LilMatrix;
use crate::stream::{merge_tree, merge_two, PartialStream, StreamOps};

/// How the matrix is split across ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionStrategy {
    /// 1D contiguous row blocks with (near-)equal *row counts* per rank.
    RowBlock,
    /// 1D contiguous row blocks balanced by *nonzero count* per rank — the
    /// load-balancing fix for skewed (power-law) matrices.
    NnzBalancedRows,
    /// 1D contiguous column blocks with (near-)equal column counts; every
    /// rank produces partials for all rows, so the merge pays for it.
    ColumnBlock,
    /// 2D grid of `row_ranks × col_ranks` tiles: row bands bound the merge
    /// width, column bands bound each rank's operand slice.
    Grid {
        /// Row bands.
        row_ranks: usize,
        /// Column bands per row band.
        col_ranks: usize,
    },
}

impl PartitionStrategy {
    /// The most-square 2D grid over `ranks` ranks (e.g. 8 → 2×4, 16 → 4×4).
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero.
    #[must_use]
    pub fn grid(ranks: usize) -> Self {
        assert!(ranks > 0, "a grid needs at least one rank");
        let mut row_ranks = 1;
        for d in 1..=ranks {
            if d * d > ranks {
                break;
            }
            if ranks.is_multiple_of(d) {
                row_ranks = d;
            }
        }
        Self::Grid { row_ranks, col_ranks: ranks / row_ranks }
    }

    /// Short name used by the CLI and benchmark records.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Self::RowBlock => "row",
            Self::NnzBalancedRows => "nnz",
            Self::ColumnBlock => "col",
            Self::Grid { .. } => "grid",
        }
    }
}

/// One rank's sub-problem: a contiguous row/column window and its load.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankSpan {
    /// Rank index.
    pub rank: usize,
    /// Global row window (half-open).
    pub rows: Range<usize>,
    /// Global column window (half-open).
    pub cols: Range<usize>,
    /// Nonzeros inside the window.
    pub nnz: usize,
}

/// A partition plan: per-rank windows over a concrete matrix.
///
/// # Examples
///
/// ```
/// use fafnir_sparse::{gen, PartitionStrategy, SpmvPartition};
///
/// let matrix = gen::rmat(8, 4_000, 7);
/// let row = SpmvPartition::new(&matrix, PartitionStrategy::RowBlock, 8);
/// let nnz = SpmvPartition::new(&matrix, PartitionStrategy::NnzBalancedRows, 8);
/// // Balancing by nonzeros beats balancing by rows on a skewed matrix.
/// assert!(nnz.nnz_imbalance() < row.nnz_imbalance());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpmvPartition {
    /// The layout strategy.
    pub strategy: PartitionStrategy,
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns.
    pub cols: usize,
    /// Matrix nonzeros.
    pub nnz: usize,
    /// Row-band boundaries (`row_bands + 1` entries, starting 0, ending
    /// `rows`).
    row_bounds: Vec<usize>,
    /// Column-band boundaries (`col_bands + 1` entries).
    col_bounds: Vec<usize>,
    /// Per-rank windows in row-major band order.
    spans: Vec<RankSpan>,
}

/// Even boundaries: `parts + 1` cut points over `0..n`.
fn even_bounds(n: usize, parts: usize) -> Vec<usize> {
    (0..=parts).map(|k| k * n / parts).collect()
}

/// Boundaries balancing the per-part sum of `counts`, kept strictly
/// increasing so every band spans at least one row.
fn balanced_bounds(counts: &[usize], parts: usize) -> Vec<usize> {
    let n = counts.len();
    let mut prefix = vec![0usize; n + 1];
    for (i, &c) in counts.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c;
    }
    let total = prefix[n];
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for k in 1..parts {
        let target = (k * total).div_ceil(parts);
        let cut = prefix.partition_point(|&p| p < target);
        // Strictly increasing, and leave at least one row per later band.
        let cut = cut.max(bounds[k - 1] + 1).min(n - (parts - k));
        bounds.push(cut);
    }
    bounds.push(n);
    bounds
}

/// Index of the band containing `index` (boundaries are sorted, start 0).
fn band_of(bounds: &[usize], index: usize) -> usize {
    bounds.partition_point(|&b| b <= index) - 1
}

impl SpmvPartition {
    /// Plans a partition of `matrix` over `ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `ranks` is zero, if a 1D strategy asks for more ranks than
    /// it has rows (or columns) to hand out, or if a [`PartitionStrategy::
    /// Grid`]'s `row_ranks × col_ranks` does not equal `ranks` or exceeds
    /// either matrix dimension.
    #[must_use]
    pub fn new(matrix: &CooMatrix, strategy: PartitionStrategy, ranks: usize) -> Self {
        assert!(ranks > 0, "a partition needs at least one rank");
        let (rows, cols) = (matrix.rows(), matrix.cols());
        let (row_bounds, col_bounds) = match strategy {
            PartitionStrategy::RowBlock => {
                assert!(ranks <= rows, "cannot split {rows} rows over {ranks} ranks");
                (even_bounds(rows, ranks), vec![0, cols])
            }
            PartitionStrategy::NnzBalancedRows => {
                assert!(ranks <= rows, "cannot split {rows} rows over {ranks} ranks");
                let mut row_counts = vec![0usize; rows];
                for &(row, _, _) in matrix.entries() {
                    row_counts[row] += 1;
                }
                (balanced_bounds(&row_counts, ranks), vec![0, cols])
            }
            PartitionStrategy::ColumnBlock => {
                assert!(ranks <= cols, "cannot split {cols} columns over {ranks} ranks");
                (vec![0, rows], even_bounds(cols, ranks))
            }
            PartitionStrategy::Grid { row_ranks, col_ranks } => {
                assert!(
                    row_ranks * col_ranks == ranks,
                    "grid {row_ranks}x{col_ranks} does not cover {ranks} ranks"
                );
                assert!(row_ranks <= rows, "cannot split {rows} rows into {row_ranks} bands");
                assert!(col_ranks <= cols, "cannot split {cols} columns into {col_ranks} bands");
                (even_bounds(rows, row_ranks), even_bounds(cols, col_ranks))
            }
        };
        let col_bands = col_bounds.len() - 1;
        let mut spans: Vec<RankSpan> = (0..ranks)
            .map(|rank| RankSpan {
                rank,
                rows: row_bounds[rank / col_bands]..row_bounds[rank / col_bands + 1],
                cols: col_bounds[rank % col_bands]..col_bounds[rank % col_bands + 1],
                nnz: 0,
            })
            .collect();
        for &(row, col, _) in matrix.entries() {
            let rank = band_of(&row_bounds, row) * col_bands + band_of(&col_bounds, col);
            spans[rank].nnz += 1;
        }
        Self { strategy, rows, cols, nnz: matrix.nnz(), row_bounds, col_bounds, spans }
    }

    /// Rank count.
    #[must_use]
    pub fn ranks(&self) -> usize {
        self.spans.len()
    }

    /// Row bands (1 for column partitions).
    #[must_use]
    pub fn row_bands(&self) -> usize {
        self.row_bounds.len() - 1
    }

    /// Column bands per row band (1 for row partitions).
    #[must_use]
    pub fn col_bands(&self) -> usize {
        self.col_bounds.len() - 1
    }

    /// Per-rank windows in row-major band order.
    #[must_use]
    pub fn spans(&self) -> &[RankSpan] {
        &self.spans
    }

    /// The rank owning matrix cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    #[must_use]
    pub fn rank_of(&self, row: usize, col: usize) -> usize {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) out of bounds");
        band_of(&self.row_bounds, row) * self.col_bands() + band_of(&self.col_bounds, col)
    }

    /// Nonzero-load imbalance factor: the busiest rank's nonzeros over the
    /// per-rank mean (max/mean, matching `ClusterReport`'s convention).
    /// 1.0 is perfect balance; `ranks` is total skew. Returns 1.0 for an
    /// empty matrix.
    #[must_use]
    pub fn nnz_imbalance(&self) -> f64 {
        if self.nnz == 0 {
            return 1.0;
        }
        let max = self.spans.iter().map(|s| s.nnz).max().unwrap_or(0) as f64;
        max / (self.nnz as f64 / self.ranks() as f64)
    }

    /// One rank's sub-matrix in local (window-relative) coordinates,
    /// extracted with a single scan — the streaming driver's per-rank step.
    #[must_use]
    fn extract(&self, matrix: &CooMatrix, rank: usize) -> CooMatrix {
        let span = &self.spans[rank];
        CooMatrix::from_triplets(
            span.rows.len(),
            span.cols.len(),
            matrix
                .entries()
                .iter()
                .filter(|(row, col, _)| span.rows.contains(row) && span.cols.contains(col))
                .map(|&(row, col, value)| (row - span.rows.start, col - span.cols.start, value)),
        )
    }
}

/// One rank's executed sub-problem: its plan, volumes, and the size of the
/// partial-result stream it ships to the synchronization stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankRun {
    /// Rank index.
    pub rank: usize,
    /// Nonzeros the rank multiplied.
    pub nnz: u64,
    /// The rank's iteration/round plan.
    pub plan: SpmvPlan,
    /// Entries processed per iteration (see
    /// [`crate::fafnir_spmv::SpmvRun::volumes`]).
    pub volumes: Vec<u64>,
    /// Exact operation counts inside the rank.
    pub ops: StreamOps,
    /// Entries in the rank's final combined stream — what crosses the
    /// partition boundary if the merge stage needs it.
    pub partial_entries: u64,
}

/// The record of one partitioned SpMV: result, per-rank runs, and the
/// synchronization stage's measured volume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedRun {
    /// The product vector `y = A·x`.
    pub y: Vec<f64>,
    /// The partition plan executed.
    pub partition: SpmvPartition,
    /// Per-rank execution records (rank order).
    pub rank_runs: Vec<RankRun>,
    /// Partial-result entries that crossed a partition boundary during the
    /// merge stage (0 for row-partitioned layouts).
    pub sync_entries: u64,
    /// Merge stages performed (one per row band that more than one rank
    /// contributed partials to).
    pub sync_rounds: usize,
    /// Operation counts of the synchronization merges themselves.
    pub sync_ops: StreamOps,
}

impl PartitionedRun {
    /// Each rank's modeled time under `timing`.
    #[must_use]
    pub fn rank_ns(&self, timing: &SpmvTiming) -> Vec<f64> {
        self.rank_runs
            .iter()
            .map(|r| timing.fafnir_parts_ns(&r.volumes, r.plan.total_rounds()))
            .collect()
    }

    /// The slowest rank's time — the parallel phase's makespan.
    #[must_use]
    pub fn critical_path_ns(&self, timing: &SpmvTiming) -> f64 {
        self.rank_ns(timing).into_iter().fold(0.0, f64::max)
    }

    /// The synchronization stage's cost: every cross-rank entry pays
    /// [`SpmvTiming::sync_merge_ns`], every merge stage one round overhead.
    #[must_use]
    pub fn sync_ns(&self, timing: &SpmvTiming) -> f64 {
        self.sync_entries as f64 * timing.sync_merge_ns
            + self.sync_rounds as f64 * timing.round_overhead_ns
    }

    /// End-to-end modeled time: slowest rank, then synchronization.
    #[must_use]
    pub fn total_ns(&self, timing: &SpmvTiming) -> f64 {
        self.critical_path_ns(timing) + self.sync_ns(timing)
    }

    /// Measured speedup over an unpartitioned run of the same problem
    /// (ideal would be the rank count).
    #[must_use]
    pub fn speedup_over(&self, serial: &SpmvRun, timing: &SpmvTiming) -> f64 {
        timing.fafnir_ns(serial) / self.total_ns(timing)
    }

    /// Time-load imbalance factor: slowest rank over the mean rank time
    /// (max/mean). Returns 1.0 when every rank is free.
    #[must_use]
    pub fn time_imbalance(&self, timing: &SpmvTiming) -> f64 {
        let times = self.rank_ns(timing);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        self.critical_path_ns(timing) / mean
    }

    /// Total operation counts: every rank plus the synchronization merges.
    #[must_use]
    pub fn total_ops(&self) -> StreamOps {
        let mut ops = self.sync_ops;
        for run in &self.rank_runs {
            ops.merge(&run.ops);
        }
        ops
    }
}

/// Runs one rank's window through the tree path.
fn run_rank(
    span: &RankSpan,
    sub: &CooMatrix,
    x: &[f64],
    vector_size: usize,
) -> (RankRun, PartialStream) {
    let lil = LilMatrix::from(sub);
    let run = fafnir_spmv::execute_to_stream(&lil, &x[span.cols.clone()], vector_size);
    (
        RankRun {
            rank: span.rank,
            nnz: sub.nnz() as u64,
            plan: run.plan,
            volumes: run.volumes,
            ops: run.ops,
            partial_entries: run.stream.len() as u64,
        },
        run.stream,
    )
}

/// Scatters a band's merged stream into the output window.
fn scatter(y: &mut [f64], rows: &Range<usize>, stream: &PartialStream) {
    for &(row, value) in stream.entries() {
        y[rows.start + row] += value;
    }
}

/// Executes `y = A·x` across a partition: every rank's window runs through
/// the FAFNIR tree path, then partial rows are reduced across ranks band by
/// band (balanced merge trees, like the hardware would gang spare PEs).
///
/// # Panics
///
/// Panics if `x.len()`, the matrix shape and the partition disagree, or if
/// `vector_size < 2` (see [`crate::fafnir_spmv::execute`]).
#[must_use]
pub fn execute_partitioned(
    matrix: &CooMatrix,
    x: &[f64],
    partition: &SpmvPartition,
    vector_size: usize,
) -> PartitionedRun {
    assert_eq!(x.len(), matrix.cols(), "operand length mismatch");
    assert_eq!(
        (partition.rows, partition.cols, partition.nnz),
        (matrix.rows(), matrix.cols(), matrix.nnz()),
        "partition was planned for a different matrix"
    );
    // One pass buckets every entry into its rank's local coordinates.
    let mut buckets: Vec<Vec<(usize, usize, f64)>> =
        partition.spans.iter().map(|s| Vec::with_capacity(s.nnz)).collect();
    for &(row, col, value) in matrix.entries() {
        let rank = partition.rank_of(row, col);
        let span = &partition.spans[rank];
        buckets[rank].push((row - span.rows.start, col - span.cols.start, value));
    }

    let mut rank_runs = Vec::with_capacity(partition.ranks());
    let mut streams = Vec::with_capacity(partition.ranks());
    for (span, triplets) in partition.spans.iter().zip(buckets) {
        let sub = CooMatrix::from_triplets(span.rows.len(), span.cols.len(), triplets);
        let (run, stream) = run_rank(span, &sub, x, vector_size);
        rank_runs.push(run);
        streams.push(stream);
    }

    // Synchronization: within each row band, reduce the column ranks'
    // partial rows; across bands, outputs are disjoint.
    let mut y = vec![0.0; partition.rows];
    let (mut sync_entries, mut sync_rounds) = (0u64, 0usize);
    let mut sync_ops = StreamOps::default();
    let col_bands = partition.col_bands();
    let mut streams = streams.into_iter();
    for band in 0..partition.row_bands() {
        let band_rows = partition.spans[band * col_bands].rows.clone();
        let band_streams: Vec<PartialStream> = streams.by_ref().take(col_bands).collect();
        if band_streams.len() > 1 {
            sync_entries += band_streams.iter().map(|s| s.len() as u64).sum::<u64>();
            sync_rounds += 1;
            let merged = merge_tree(band_streams, &mut sync_ops);
            scatter(&mut y, &band_rows, &merged);
        } else if let Some(stream) = band_streams.into_iter().next() {
            scatter(&mut y, &band_rows, &stream);
        }
    }
    PartitionedRun {
        y,
        partition: partition.clone(),
        rank_runs,
        sync_entries,
        sync_rounds,
        sync_ops,
    }
}

/// The streaming driver: identical accounting to [`execute_partitioned`],
/// but ranks are extracted and executed one at a time and their partials
/// folded immediately, so at no point does more than one rank's sub-matrix
/// (plus the running output and one band accumulator) live in memory — a
/// matrix larger than any single rank's span never materializes a full
/// dense intermediate.
///
/// Floating-point note: the band fold is sequential (left to right) rather
/// than a balanced tree, so results can differ from
/// [`execute_partitioned`] by rounding only.
///
/// # Panics
///
/// Panics under the same conditions as [`execute_partitioned`].
#[must_use]
pub fn stream_partitioned(
    matrix: &CooMatrix,
    x: &[f64],
    partition: &SpmvPartition,
    vector_size: usize,
) -> PartitionedRun {
    assert_eq!(x.len(), matrix.cols(), "operand length mismatch");
    assert_eq!(
        (partition.rows, partition.cols, partition.nnz),
        (matrix.rows(), matrix.cols(), matrix.nnz()),
        "partition was planned for a different matrix"
    );
    let mut y = vec![0.0; partition.rows];
    let mut rank_runs = Vec::with_capacity(partition.ranks());
    let (mut sync_entries, mut sync_rounds) = (0u64, 0usize);
    let mut sync_ops = StreamOps::default();
    let col_bands = partition.col_bands();
    for band in 0..partition.row_bands() {
        let band_rows = partition.spans[band * col_bands].rows.clone();
        let mut accumulator = PartialStream::new();
        for rank in band * col_bands..(band + 1) * col_bands {
            let sub = partition.extract(matrix, rank);
            let (run, stream) = run_rank(&partition.spans[rank], &sub, x, vector_size);
            rank_runs.push(run);
            if col_bands > 1 {
                sync_entries += stream.len() as u64;
                accumulator = merge_two(&accumulator, &stream, &mut sync_ops);
            } else {
                accumulator = stream;
            }
        }
        if col_bands > 1 {
            sync_rounds += 1;
        }
        scatter(&mut y, &band_rows, &accumulator);
    }
    PartitionedRun {
        y,
        partition: partition.clone(),
        rank_runs,
        sync_entries,
        sync_rounds,
        sync_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9_f64.max(y.abs() * 1e-12), "{x} vs {y}");
        }
    }

    fn operand(cols: usize) -> Vec<f64> {
        (0..cols).map(|i| 0.5 + (i % 17) as f64 * 0.25).collect()
    }

    fn strategies(ranks: usize) -> [PartitionStrategy; 4] {
        [
            PartitionStrategy::RowBlock,
            PartitionStrategy::NnzBalancedRows,
            PartitionStrategy::ColumnBlock,
            PartitionStrategy::grid(ranks),
        ]
    }

    #[test]
    fn grid_factorization_is_most_square() {
        assert_eq!(
            PartitionStrategy::grid(1),
            PartitionStrategy::Grid { row_ranks: 1, col_ranks: 1 }
        );
        assert_eq!(
            PartitionStrategy::grid(8),
            PartitionStrategy::Grid { row_ranks: 2, col_ranks: 4 }
        );
        assert_eq!(
            PartitionStrategy::grid(16),
            PartitionStrategy::Grid { row_ranks: 4, col_ranks: 4 }
        );
        assert_eq!(
            PartitionStrategy::grid(7),
            PartitionStrategy::Grid { row_ranks: 1, col_ranks: 7 }
        );
    }

    #[test]
    fn spans_tile_the_matrix_exactly() {
        let matrix = gen::rmat(7, 2_000, 5);
        for strategy in strategies(8) {
            let partition = SpmvPartition::new(&matrix, strategy, 8);
            assert_eq!(partition.ranks(), 8, "{strategy:?}");
            let total: usize = partition.spans().iter().map(|s| s.nnz).sum();
            assert_eq!(total, matrix.nnz(), "{strategy:?} must cover every entry");
            // Every cell maps to exactly the span that contains it.
            for &(row, col, _) in matrix.entries().iter().step_by(97) {
                let span = &partition.spans()[partition.rank_of(row, col)];
                assert!(span.rows.contains(&row) && span.cols.contains(&col));
            }
            // Windows are non-empty even on skewed inputs.
            for span in partition.spans() {
                assert!(!span.rows.is_empty() && !span.cols.is_empty(), "{strategy:?}");
            }
        }
    }

    #[test]
    fn nnz_balancing_beats_row_counting_on_skewed_matrices() {
        let matrix = gen::rmat(9, 30_000, 6);
        let row = SpmvPartition::new(&matrix, PartitionStrategy::RowBlock, 8);
        let nnz = SpmvPartition::new(&matrix, PartitionStrategy::NnzBalancedRows, 8);
        assert!(
            nnz.nnz_imbalance() < row.nnz_imbalance() - 0.2,
            "nnz {} vs row {}",
            nnz.nnz_imbalance(),
            row.nnz_imbalance()
        );
        assert!(nnz.nnz_imbalance() < 1.2, "greedy cuts land near balance");
    }

    #[test]
    fn balanced_bounds_survive_one_row_holding_everything() {
        // All weight in one row: bands stay non-empty and strictly ordered.
        let mut counts = vec![0usize; 10];
        counts[4] = 100;
        let bounds = balanced_bounds(&counts, 4);
        assert_eq!(bounds.first(), Some(&0));
        assert_eq!(bounds.last(), Some(&10));
        for window in bounds.windows(2) {
            assert!(window[0] < window[1], "{bounds:?}");
        }
    }

    #[test]
    fn every_strategy_matches_the_dense_reference() {
        let suite =
            [gen::rmat(7, 3_000, 8), gen::banded(150, 3, 9), gen::uniform(96, 96, 0.08, 10)];
        for matrix in &suite {
            let x = operand(matrix.cols());
            let reference = matrix.multiply_dense(&x);
            let serial = fafnir_spmv::execute(&LilMatrix::from(matrix), &x, 32);
            assert_close(&serial.y, &reference);
            for ranks in [1usize, 3, 8] {
                for strategy in strategies(ranks) {
                    let partition = SpmvPartition::new(matrix, strategy, ranks);
                    let run = execute_partitioned(matrix, &x, &partition, 32);
                    assert_close(&run.y, &reference);
                    assert_close(&run.y, &serial.y);
                    let streamed = stream_partitioned(matrix, &x, &partition, 32);
                    assert_close(&streamed.y, &reference);
                    assert_eq!(streamed.sync_entries, run.sync_entries, "{strategy:?}");
                    assert_eq!(streamed.sync_rounds, run.sync_rounds);
                    let nnz: u64 = run.rank_runs.iter().map(|r| r.nnz).sum();
                    assert_eq!(nnz, matrix.nnz() as u64, "{strategy:?}");
                }
            }
        }
    }

    #[test]
    fn row_partitions_need_no_synchronization_and_column_partitions_do() {
        let matrix = gen::rmat(7, 2_000, 12);
        let x = operand(matrix.cols());
        for strategy in [PartitionStrategy::RowBlock, PartitionStrategy::NnzBalancedRows] {
            let run =
                execute_partitioned(&matrix, &x, &SpmvPartition::new(&matrix, strategy, 4), 32);
            assert_eq!(run.sync_entries, 0, "{strategy:?}");
            assert_eq!(run.sync_rounds, 0);
        }
        let col = execute_partitioned(
            &matrix,
            &x,
            &SpmvPartition::new(&matrix, PartitionStrategy::ColumnBlock, 4),
            32,
        );
        assert!(col.sync_entries > 0);
        assert_eq!(col.sync_rounds, 1, "one band, one merge stage");
        let timing = SpmvTiming::paper();
        assert!(col.sync_ns(&timing) > 0.0);
        assert!(col.total_ns(&timing) > col.critical_path_ns(&timing));
    }

    #[test]
    fn partitioning_speeds_up_over_the_serial_run() {
        let matrix = gen::banded(2_048, 6, 13);
        let x = operand(matrix.cols());
        let timing = SpmvTiming::paper();
        let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, 64);
        let mut last = 0.0;
        for ranks in [2usize, 4, 8] {
            let partition = SpmvPartition::new(&matrix, PartitionStrategy::NnzBalancedRows, ranks);
            let run = execute_partitioned(&matrix, &x, &partition, 64);
            let speedup = run.speedup_over(&serial, &timing);
            assert!(speedup > 1.2, "{ranks} ranks: {speedup}");
            assert!(speedup > last, "more ranks, more speedup on a balanced band");
            assert!(run.time_imbalance(&timing) >= 1.0);
            last = speedup;
        }
    }

    #[test]
    #[should_panic(expected = "different matrix")]
    fn partition_and_matrix_must_agree() {
        let a = gen::banded(32, 1, 1);
        let b = gen::banded(48, 1, 1);
        let partition = SpmvPartition::new(&a, PartitionStrategy::RowBlock, 4);
        let x = vec![1.0; b.cols()];
        let _ = execute_partitioned(&b, &x, &partition, 32);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_ranks_than_rows_is_rejected() {
        let matrix = gen::banded(4, 1, 1);
        let _ = SpmvPartition::new(&matrix, PartitionStrategy::RowBlock, 8);
    }
}
