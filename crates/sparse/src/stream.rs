//! Sorted partial-result streams and their tree reduction.
//!
//! In SpMV mode FAFNIR streams `(row, value)` pairs — indices travel *with*
//! the data, unlike embedding lookup where indices are known up front
//! (Table II of the paper). Each leaf PE multiplies a column's non-zeros by
//! its operand element, producing a row-sorted stream; the tree then merges
//! streams pairwise, summing entries with equal row indices. This module is
//! that dataflow, with operation counting for the timing model.

use serde::{Deserialize, Serialize};

/// A row-sorted stream of partial results.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PartialStream {
    entries: Vec<(usize, f64)>,
}

impl PartialStream {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from entries that must already be sorted by row, duplicates
    /// allowed (they are combined).
    ///
    /// # Panics
    ///
    /// Debug-panics if the entries are not sorted.
    #[must_use]
    pub fn from_sorted(entries: Vec<(usize, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "entries must be row-sorted");
        let mut stream = Self::new();
        for (row, value) in entries {
            stream.push(row, value);
        }
        stream
    }

    /// Appends an entry, combining with the tail if the row matches.
    ///
    /// # Panics
    ///
    /// Debug-panics if `row` is smaller than the current tail row.
    pub fn push(&mut self, row: usize, value: f64) {
        match self.entries.last_mut() {
            Some((last, acc)) if *last == row => *acc += value,
            Some((last, _)) => {
                debug_assert!(*last < row, "push must preserve row order");
                self.entries.push((row, value));
            }
            None => self.entries.push((row, value)),
        }
    }

    /// Entry count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the stream holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sorted entries.
    #[must_use]
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Scatters the stream into a dense vector of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of bounds.
    #[must_use]
    pub fn to_dense(&self, rows: usize) -> Vec<f64> {
        let mut dense = vec![0.0; rows];
        for &(row, value) in &self.entries {
            dense[row] += value;
        }
        dense
    }
}

/// Operation counters of a stream reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamOps {
    /// Index comparisons during merging.
    pub compares: u64,
    /// Additions of equal-row values (reduce operations).
    pub adds: u64,
    /// Entries forwarded unchanged.
    pub forwards: u64,
    /// Multiplications at the leaves.
    pub multiplies: u64,
}

impl StreamOps {
    /// Adds another counter block into this one.
    pub fn merge(&mut self, other: &StreamOps) {
        self.compares += other.compares;
        self.adds += other.adds;
        self.forwards += other.forwards;
        self.multiplies += other.multiplies;
    }
}

/// Merges two row-sorted streams, summing equal rows — one PE firing in
/// SpMV mode.
#[must_use]
pub fn merge_two(a: &PartialStream, b: &PartialStream, ops: &mut StreamOps) -> PartialStream {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    let (ea, eb) = (a.entries(), b.entries());
    while i < ea.len() && j < eb.len() {
        ops.compares += 1;
        match ea[i].0.cmp(&eb[j].0) {
            std::cmp::Ordering::Less => {
                out.push(ea[i]);
                ops.forwards += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(eb[j]);
                ops.forwards += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((ea[i].0, ea[i].1 + eb[j].1));
                ops.adds += 1;
                i += 1;
                j += 1;
            }
        }
    }
    ops.forwards += (ea.len() - i + eb.len() - j) as u64;
    out.extend_from_slice(&ea[i..]);
    out.extend_from_slice(&eb[j..]);
    PartialStream { entries: out }
}

/// Reduces many streams through a balanced binary tree — the FAFNIR tree in
/// SpMV mode. Returns the single combined stream.
#[must_use]
pub fn merge_tree(mut streams: Vec<PartialStream>, ops: &mut StreamOps) -> PartialStream {
    if streams.is_empty() {
        return PartialStream::new();
    }
    while streams.len() > 1 {
        let mut next = Vec::with_capacity(streams.len().div_ceil(2));
        let mut iter = streams.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => next.push(merge_two(&a, &b, ops)),
                None => next.push(a),
            }
        }
        streams = next;
    }
    streams.pop().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn push_combines_equal_rows() {
        let mut stream = PartialStream::new();
        stream.push(1, 2.0);
        stream.push(1, 3.0);
        stream.push(4, 1.0);
        assert_eq!(stream.entries(), &[(1, 5.0), (4, 1.0)]);
    }

    #[test]
    fn merge_two_sums_common_rows() {
        let a = PartialStream::from_sorted(vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = PartialStream::from_sorted(vec![(2, 4.0), (3, 1.0)]);
        let mut ops = StreamOps::default();
        let merged = merge_two(&a, &b, &mut ops);
        assert_eq!(merged.entries(), &[(0, 1.0), (2, 6.0), (3, 1.0), (5, 3.0)]);
        assert_eq!(ops.adds, 1);
        assert!(ops.compares >= 3);
    }

    #[test]
    fn merge_tree_handles_odd_counts_and_empties() {
        let streams = vec![
            PartialStream::from_sorted(vec![(0, 1.0)]),
            PartialStream::new(),
            PartialStream::from_sorted(vec![(0, 2.0), (1, 1.0)]),
        ];
        let mut ops = StreamOps::default();
        let merged = merge_tree(streams, &mut ops);
        assert_eq!(merged.entries(), &[(0, 3.0), (1, 1.0)]);
        assert!(merge_tree(Vec::new(), &mut ops).is_empty());
    }

    #[test]
    fn to_dense_scatters() {
        let stream = PartialStream::from_sorted(vec![(1, 2.0), (3, -1.0)]);
        assert_eq!(stream.to_dense(4), vec![0.0, 2.0, 0.0, -1.0]);
    }

    proptest! {
        #[test]
        fn tree_merge_equals_dense_sum(
            lists in proptest::collection::vec(
                proptest::collection::vec((0usize..32, -10.0f64..10.0), 0..20), 1..8)
        ) {
            // Any split into sorted streams reduces to the same dense total.
            let mut expected = vec![0.0; 32];
            let mut streams = Vec::new();
            for list in &lists {
                let mut sorted = list.clone();
                sorted.sort_by_key(|&(row, _)| row);
                for &(row, value) in &sorted {
                    expected[row] += value;
                }
                streams.push(PartialStream::from_sorted(sorted));
            }
            let mut ops = StreamOps::default();
            let merged = merge_tree(streams, &mut ops);
            let dense = merged.to_dense(32);
            for (a, b) in dense.iter().zip(&expected) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }
    }
}
