//! SpMV on the FAFNIR tree (paper Sec. IV-D, Figs. 7–8).
//!
//! Embedding lookup reduces distinct vectors into one vector; SpMV reduces
//! the elements of a vector into one element. FAFNIR bridges the gap with
//! *vectorization*: each leaf PE streams one column's non-zeros (LIL),
//! multiplies them by the operand element, and emits a row-sorted
//! `(row, value)` stream; tree PEs merge streams, summing equal rows.
//! Matrices wider than the tree run in iterations and rounds per
//! [`crate::iteration::SpmvPlan`]: iteration 0 multiplies, later iterations
//! only merge (leaf PEs skip the multiply, exactly like embedding mode).

use serde::{Deserialize, Serialize};

use crate::iteration::SpmvPlan;
use crate::lil::LilMatrix;
use crate::stream::{merge_tree, PartialStream, StreamOps};

/// Per-entry timing constants of the SpMV engines, in nanoseconds.
///
/// Derived from the streaming-bandwidth and pipeline analysis of Sec. VI:
/// FAFNIR streams LIL straight off DRAM into the multiply tree (no
/// decompression, fully parallel reduction), so its multiply phase is
/// several times faster per non-zero; the Two-Step accelerator's multi-way
/// merge core makes its *merge* phase faster per entry instead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpmvTiming {
    /// FAFNIR iteration-0 cost per non-zero.
    pub fafnir_multiply_ns: f64,
    /// FAFNIR merge-iteration cost per input entry.
    pub fafnir_merge_ns: f64,
    /// Two-Step iteration-0 cost per non-zero (decompression + adder chain).
    pub two_step_multiply_ns: f64,
    /// Two-Step merge cost per input entry (optimized multi-way merge).
    pub two_step_merge_ns: f64,
    /// Fixed per-round overhead (kernel launch, stream setup).
    pub round_overhead_ns: f64,
    /// Synchronization cost per partial-result entry reduced *across*
    /// partition ranks (see [`crate::partition`]): a cross-rank entry pays
    /// the tree-merge cost plus the accumulator-link transfer, the way
    /// `fafnir-cluster` prices cross-shard accumulator traffic.
    pub sync_merge_ns: f64,
}

impl SpmvTiming {
    /// Constants calibrated to Fig. 14's envelope: up to ≈4.6× for
    /// merge-free workloads, tapering toward ≈1.1× when merges dominate.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            fafnir_multiply_ns: 0.16,
            fafnir_merge_ns: 0.48,
            two_step_multiply_ns: 0.16 * 4.6,
            two_step_merge_ns: 0.48 * 0.2,
            round_overhead_ns: 100.0,
            sync_merge_ns: 0.8,
        }
    }

    /// Total time of a run on FAFNIR given its per-iteration entry volumes.
    #[must_use]
    pub fn fafnir_ns(&self, run: &SpmvRun) -> f64 {
        self.fafnir_parts_ns(&run.volumes, run.plan.total_rounds())
    }

    /// Time of one (sub-)run from its raw per-iteration volumes and round
    /// count — the form partition ranks carry (see [`crate::partition`]).
    #[must_use]
    pub fn fafnir_parts_ns(&self, volumes: &[u64], total_rounds: usize) -> f64 {
        let mut total = volumes.first().map_or(0.0, |&v| v as f64 * self.fafnir_multiply_ns);
        for &volume in volumes.iter().skip(1) {
            total += volume as f64 * self.fafnir_merge_ns;
        }
        total + total_rounds as f64 * self.round_overhead_ns
    }

    /// Total time of the same run on the Two-Step accelerator.
    #[must_use]
    pub fn two_step_ns(&self, run: &SpmvRun) -> f64 {
        let mut total = run.volumes[0] as f64 * self.two_step_multiply_ns;
        for &volume in &run.volumes[1..] {
            total += volume as f64 * self.two_step_merge_ns;
        }
        total + run.plan.total_rounds() as f64 * self.round_overhead_ns
    }

    /// FAFNIR's speedup over Two-Step for a run (Fig. 14's y-axis).
    #[must_use]
    pub fn speedup(&self, run: &SpmvRun) -> f64 {
        self.two_step_ns(run) / self.fafnir_ns(run)
    }
}

impl Default for SpmvTiming {
    fn default() -> Self {
        Self::paper()
    }
}

/// The record of one SpMV execution: result, plan, and measured volumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmvRun {
    /// The product vector `y = A·x`.
    pub y: Vec<f64>,
    /// The iteration/round plan used.
    pub plan: SpmvPlan,
    /// Entries processed per iteration: `volumes[0]` is the non-zero count,
    /// later entries are merge-iteration input volumes.
    pub volumes: Vec<u64>,
    /// Exact operation counts across the run.
    pub ops: StreamOps,
}

/// The outcome of [`execute_to_stream`]: the tree's final combined
/// row-sorted stream plus the plan/volume accounting, *before* the stream
/// is scattered into a dense vector. This is the form a partition rank
/// ships to the synchronization stage (see [`crate::partition`]), where
/// partial rows from several ranks still have to be reduced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmvStreamRun {
    /// The combined row-sorted partial-result stream.
    pub stream: PartialStream,
    /// The iteration/round plan used.
    pub plan: SpmvPlan,
    /// Entries processed per iteration (see [`SpmvRun::volumes`]).
    pub volumes: Vec<u64>,
    /// Exact operation counts across the run.
    pub ops: StreamOps,
}

/// Executes `y = A·x` on the FAFNIR tree, functionally and with exact
/// per-iteration volume accounting.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `vector_size < 2` — a
/// 1-stream merge round can never shrink the stream count, so
/// `vector_size == 1` would loop forever (the tree needs at least two
/// inputs per PE to make progress).
#[must_use]
pub fn execute(matrix: &LilMatrix, x: &[f64], vector_size: usize) -> SpmvRun {
    let SpmvStreamRun { stream, plan, volumes, ops } = execute_to_stream(matrix, x, vector_size);
    SpmvRun { y: stream.to_dense(matrix.rows()), plan, volumes, ops }
}

/// Like [`execute`], but returns the final combined stream instead of a
/// dense vector — the sparse form cross-partition synchronization merges.
///
/// # Panics
///
/// Panics if `x.len() != matrix.cols()` or `vector_size < 2` (see
/// [`execute`]).
#[must_use]
pub fn execute_to_stream(matrix: &LilMatrix, x: &[f64], vector_size: usize) -> SpmvStreamRun {
    assert_eq!(x.len(), matrix.cols(), "operand length mismatch");
    assert!(
        vector_size >= 2,
        "vector size must be at least 2: a 1-stream merge round never \
         shrinks the stream count"
    );
    let plan = SpmvPlan::new(matrix.cols(), vector_size);
    let mut ops = StreamOps::default();
    let mut volumes = vec![matrix.nnz() as u64];

    // Iteration 0: one round per column chunk; leaf PEs multiply, the tree
    // merges the chunk's column streams into one partial stream.
    let mut streams: Vec<PartialStream> = matrix
        .column_chunks(vector_size)
        .map(|chunk| {
            let leaf_streams: Vec<PartialStream> = chunk
                .columns()
                .map(|(col, list)| {
                    ops.multiplies += list.len() as u64;
                    PartialStream::from_sorted(
                        list.iter().map(|&(row, value)| (row, value * x[col])).collect(),
                    )
                })
                .collect();
            merge_tree(leaf_streams, &mut ops)
        })
        .collect();

    // Merge iterations: group up to `vector_size` streams per round; leaf
    // PEs skip the multiply (Table II).
    while streams.len() > 1 {
        volumes.push(streams.iter().map(|s| s.len() as u64).sum());
        let mut next = Vec::with_capacity(streams.len().div_ceil(vector_size));
        let mut iter = streams.into_iter().peekable();
        while iter.peek().is_some() {
            let group: Vec<PartialStream> = iter.by_ref().take(vector_size).collect();
            next.push(merge_tree(group, &mut ops));
        }
        streams = next;
    }

    let stream = streams.pop().unwrap_or_default();
    debug_assert_eq!(volumes.len(), plan.iterations());
    SpmvStreamRun { stream, plan, volumes, ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::gen;

    fn lil(coo: &CooMatrix) -> LilMatrix {
        LilMatrix::from(coo)
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9_f64.max(y.abs() * 1e-12), "{x} vs {y}");
        }
    }

    #[test]
    fn matches_dense_reference_on_small_matrix() {
        let coo = gen::uniform(64, 64, 0.1, 5);
        let x: Vec<f64> = (0..64).map(|i| (i as f64) * 0.25 - 4.0).collect();
        let run = execute(&lil(&coo), &x, 2048);
        assert_close(&run.y, &coo.multiply_dense(&x));
        assert_eq!(run.plan.merge_iterations(), 0);
        assert_eq!(run.volumes.len(), 1);
    }

    #[test]
    fn chunked_execution_still_matches_reference() {
        // Force many rounds and a merge iteration with a tiny vector size.
        let coo = gen::rmat(7, 1500, 6); // 128 × 128
        let x: Vec<f64> = (0..128).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let run = execute(&lil(&coo), &x, 16);
        assert_close(&run.y, &coo.multiply_dense(&x));
        assert!(run.plan.multiply_rounds() == 8);
        assert_eq!(run.plan.merge_iterations(), 1);
        assert_eq!(run.volumes.len(), 2);
        assert!(run.volumes[1] > 0);
    }

    #[test]
    fn multiply_count_equals_nnz() {
        let coo = gen::banded(100, 3, 7);
        let x = vec![1.0; 100];
        let run = execute(&lil(&coo), &x, 32);
        assert_eq!(run.ops.multiplies, coo.nnz() as u64);
    }

    #[test]
    fn merge_free_runs_are_fastest_relative_to_two_step() {
        let timing = SpmvTiming::paper();
        let coo_small = gen::uniform(512, 512, 0.02, 8);
        let x = vec![1.0; 512];
        let small = execute(&lil(&coo_small), &x, 2048);
        // No merge iterations: speedup equals the multiply advantage, minus
        // the shared round overhead.
        let speedup = timing.speedup(&small);
        assert!(speedup > 3.0 && speedup <= 4.6, "speedup {speedup}");
    }

    #[test]
    fn merge_heavy_runs_shrink_the_speedup_but_stay_above_one() {
        let timing = SpmvTiming::paper();
        let coo = gen::rmat(9, 20_000, 9); // 512 × 512, denser
        let x = vec![1.0; 512];
        // Tiny vector size ⇒ many rounds and merge volume.
        let run = execute(&lil(&coo), &x, 8);
        let speedup = timing.speedup(&run);
        assert!(speedup >= 1.05, "worst case stays ≥ ~1.1: {speedup}");
        let easy = execute(&lil(&coo), &x, 2048);
        assert!(timing.speedup(&easy) > speedup, "fewer merges ⇒ bigger win");
    }

    #[test]
    #[should_panic(expected = "vector size must be at least 2")]
    fn vector_size_one_fails_fast_instead_of_livelocking() {
        // Regression: the merge loop groups `take(vector_size)` streams per
        // round, so with vector_size == 1 the stream count never shrank and
        // `execute` spun forever. It must panic immediately instead.
        let coo = gen::uniform(8, 8, 0.5, 3);
        let x = vec![1.0; 8];
        let _ = execute(&lil(&coo), &x, 1);
    }

    #[test]
    fn stream_variant_matches_the_dense_path() {
        let coo = gen::rmat(6, 400, 11);
        let x: Vec<f64> = (0..64).map(|i| 0.5 + i as f64 * 0.1).collect();
        let dense = execute(&lil(&coo), &x, 16);
        let stream = execute_to_stream(&lil(&coo), &x, 16);
        assert_eq!(stream.stream.to_dense(64), dense.y);
        assert_eq!(stream.plan, dense.plan);
        assert_eq!(stream.volumes, dense.volumes);
        assert_eq!(stream.ops, dense.ops);
    }

    #[test]
    fn empty_column_matrix_works() {
        let coo = CooMatrix::from_triplets(4, 4, [(1, 1, 3.0)]);
        let run = execute(&lil(&coo), &[1.0, 2.0, 1.0, 1.0], 2);
        assert_eq!(run.y, vec![0.0, 6.0, 0.0, 0.0]);
    }
}
