//! Coordinate (COO) sparse-matrix format — the interchange format the
//! generators produce and the other formats convert from.

use serde::{Deserialize, Serialize};

/// A sparse matrix as a list of `(row, col, value)` triplets.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// An empty matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, entries: Vec::new() }
    }

    /// Builds from triplets, summing duplicates.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[must_use]
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut matrix = Self::new(rows, cols);
        for (row, col, value) in triplets {
            matrix.push(row, col, value);
        }
        matrix.sum_duplicates();
        matrix
    }

    /// Appends one entry (duplicates allowed until
    /// [`CooMatrix::sum_duplicates`]).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "entry ({row},{col}) out of bounds");
        self.entries.push((row, col, value));
    }

    /// Sorts entries row-major and merges duplicate coordinates by summing.
    /// Zero-valued results are kept (explicit zeros are legal).
    pub fn sum_duplicates(&mut self) {
        self.entries.sort_by_key(|&(row, col, _)| (row, col));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(self.entries.len());
        for &(row, col, value) in &self.entries {
            match merged.last_mut() {
                Some((r, c, v)) if *r == row && *c == col => *v += value,
                _ => merged.push((row, col, value)),
            }
        }
        self.entries = merged;
    }

    /// Row count.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored entries (after duplicate summing, sorted row-major).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Density `nnz / (rows × cols)`.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.nnz() as f64 / (self.rows as f64 * self.cols as f64)
    }

    /// The triplets, in insertion (or sorted, after summing) order.
    #[must_use]
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }

    /// Dense matrix–vector product reference (small matrices only).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn multiply_dense(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "operand length mismatch");
        let mut y = vec![0.0; self.rows];
        for &(row, col, value) in &self.entries {
            y[row] += value * x[col];
        }
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_triplets_sums_duplicates_and_sorts() {
        let m = CooMatrix::from_triplets(2, 2, [(1, 0, 2.0), (0, 0, 1.0), (1, 0, 3.0)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.entries(), &[(0, 0, 1.0), (1, 0, 5.0)]);
    }

    #[test]
    fn multiply_dense_matches_hand_computation() {
        // [[1, 2], [0, 3]] × [4, 5] = [14, 15]
        let m = CooMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        assert_eq!(m.multiply_dense(&[4.0, 5.0]), vec![14.0, 15.0]);
    }

    #[test]
    fn density_is_fraction_of_cells() {
        let m = CooMatrix::from_triplets(4, 4, [(0, 0, 1.0), (3, 3, 1.0)]);
        assert!((m.density() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_entry_panics() {
        let mut m = CooMatrix::new(2, 2);
        m.push(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = CooMatrix::new(0, 4);
    }
}
