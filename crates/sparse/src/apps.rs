//! SpMV-based applications (paper Fig. 14's two domains).
//!
//! * **Scientific computing** — iterative matrix inversion: the Jacobi
//!   method solves `A·x = b` through repeated SpMV, the kernel the paper
//!   names for numeric algebra.
//! * **Graph analytics** — PageRank over an adjacency matrix, the classic
//!   SpMV-powered graph workload.
//!
//! Both run every SpMV through the FAFNIR engine (functional + timed) so an
//! application-level speedup over Two-Step can be reported.

use serde::{Deserialize, Serialize};

use crate::csr::CsrMatrix;
use crate::fafnir_spmv::{self, SpmvRun, SpmvTiming};
use crate::lil::LilMatrix;
use crate::two_step;

/// Result of an iterative application run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRun {
    /// Final solution/state vector.
    pub solution: Vec<f64>,
    /// SpMV invocations performed.
    pub spmv_calls: usize,
    /// Whether the iteration converged within the budget.
    pub converged: bool,
    /// Total FAFNIR time across all SpMVs, in nanoseconds.
    pub fafnir_ns: f64,
    /// Total Two-Step time across all SpMVs, in nanoseconds.
    pub two_step_ns: f64,
}

impl AppRun {
    /// Application-level FAFNIR speedup over Two-Step.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.fafnir_ns <= 0.0 {
            1.0
        } else {
            self.two_step_ns / self.fafnir_ns
        }
    }
}

/// Runs one SpMV through both engines, accumulating their times.
fn timed_spmv(
    lil: &LilMatrix,
    x: &[f64],
    vector_size: usize,
    timing: &SpmvTiming,
    fafnir_total: &mut f64,
    two_step_total: &mut f64,
) -> SpmvRun {
    let run = fafnir_spmv::execute(lil, x, vector_size);
    let baseline = two_step::execute(lil, x, vector_size);
    *fafnir_total += timing.fafnir_ns(&run);
    *two_step_total += timing.two_step_ns(&baseline);
    run
}

/// Jacobi iteration solving `A·x = b` (matrix-inversion application).
///
/// `A` must be diagonally dominant (see [`crate::gen::banded`]). Stops when
/// the max-norm update falls below `tolerance` or after `max_iterations`.
///
/// # Panics
///
/// Panics if shapes mismatch or a diagonal element is zero.
#[must_use]
pub fn jacobi_solve(
    a: &CsrMatrix,
    b: &[f64],
    vector_size: usize,
    tolerance: f64,
    max_iterations: usize,
    timing: &SpmvTiming,
) -> AppRun {
    assert_eq!(a.rows(), a.cols(), "Jacobi needs a square matrix");
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    let n = a.rows();
    // Split A = D + R; iterate x ← D⁻¹ (b − R·x).
    let mut diagonal = vec![0.0; n];
    let mut remainder = crate::coo::CooMatrix::new(n, n);
    for (row, diag) in diagonal.iter_mut().enumerate() {
        for (col, value) in a.row(row) {
            if row == col {
                *diag = value;
            } else {
                remainder.push(row, col, value);
            }
        }
    }
    remainder.sum_duplicates();
    for (row, &d) in diagonal.iter().enumerate() {
        assert!(d != 0.0, "zero diagonal at row {row}");
    }
    let remainder = LilMatrix::from(&remainder);

    let mut x = vec![0.0; n];
    let mut fafnir_ns = 0.0;
    let mut two_step_ns = 0.0;
    let mut calls = 0;
    let mut converged = false;
    for _ in 0..max_iterations {
        let rx = timed_spmv(&remainder, &x, vector_size, timing, &mut fafnir_ns, &mut two_step_ns);
        calls += 1;
        let mut delta: f64 = 0.0;
        for row in 0..n {
            let next = (b[row] - rx.y[row]) / diagonal[row];
            delta = delta.max((next - x[row]).abs());
            x[row] = next;
        }
        if delta < tolerance {
            converged = true;
            break;
        }
    }
    AppRun { solution: x, spmv_calls: calls, converged, fafnir_ns, two_step_ns }
}

/// PageRank over a (column-stochastic-normalized) adjacency matrix.
///
/// # Panics
///
/// Panics if the matrix is not square.
#[must_use]
pub fn pagerank(
    adjacency: &CsrMatrix,
    damping: f64,
    vector_size: usize,
    tolerance: f64,
    max_iterations: usize,
    timing: &SpmvTiming,
) -> AppRun {
    assert_eq!(adjacency.rows(), adjacency.cols(), "PageRank needs a square matrix");
    let n = adjacency.rows();
    // Column-normalize Aᵀ so rank flows along out-edges.
    let transposed = adjacency.transpose();
    let mut normalized = crate::coo::CooMatrix::new(n, n);
    let mut out_degree = vec![0.0; n];
    for row in 0..n {
        for (col, value) in transposed.row(row) {
            out_degree[col] += value.abs();
        }
    }
    for row in 0..n {
        for (col, value) in transposed.row(row) {
            if out_degree[col] > 0.0 {
                normalized.push(row, col, value.abs() / out_degree[col]);
            }
        }
    }
    normalized.sum_duplicates();
    let matrix = LilMatrix::from(&normalized);

    let dangling: Vec<bool> = out_degree.iter().map(|&d| d == 0.0).collect();

    let mut rank = vec![1.0 / n as f64; n];
    let teleport = (1.0 - damping) / n as f64;
    let mut fafnir_ns = 0.0;
    let mut two_step_ns = 0.0;
    let mut calls = 0;
    let mut converged = false;
    for _ in 0..max_iterations {
        let product =
            timed_spmv(&matrix, &rank, vector_size, timing, &mut fafnir_ns, &mut two_step_ns);
        calls += 1;
        // Rank parked on dangling nodes is redistributed uniformly so the
        // vector stays a probability distribution.
        let dangling_mass: f64 =
            rank.iter().zip(&dangling).filter_map(|(r, &d)| d.then_some(*r)).sum();
        let spread = damping * dangling_mass / n as f64;
        let mut delta = 0.0;
        for (current, &product_row) in rank.iter_mut().zip(&product.y) {
            let next = teleport + spread + damping * product_row;
            delta += (next - *current).abs();
            *current = next;
        }
        if delta < tolerance {
            converged = true;
            break;
        }
    }
    AppRun { solution: rank, spmv_calls: calls, converged, fafnir_ns, two_step_ns }
}

/// Conjugate-gradient solve of `A·x = b` for symmetric positive-definite
/// `A` (see [`crate::gen::spd_banded`]) — the classic PDE-solver kernel the
/// paper's conclusion names for FAFNIR's numeric-algebra direction. One
/// SpMV per iteration runs through both engines for the speedup accounting;
/// the vector updates are host-side dot products.
///
/// # Panics
///
/// Panics if the matrix is not square or shapes mismatch.
#[must_use]
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    vector_size: usize,
    tolerance: f64,
    max_iterations: usize,
    timing: &SpmvTiming,
) -> AppRun {
    assert_eq!(a.rows(), a.cols(), "CG needs a square (SPD) matrix");
    assert_eq!(b.len(), a.rows(), "right-hand side length mismatch");
    let n = a.rows();
    let lil = {
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for row in 0..n {
            for (col, value) in a.row(row) {
                coo.push(row, col, value);
            }
        }
        coo.sum_duplicates();
        LilMatrix::from(&coo)
    };
    let dot = |u: &[f64], v: &[f64]| -> f64 { u.iter().zip(v).map(|(x, y)| x * y).sum() };

    let mut x = vec![0.0; n];
    let mut residual = b.to_vec();
    let mut direction = residual.clone();
    let mut rho = dot(&residual, &residual);
    let mut fafnir_ns = 0.0;
    let mut two_step_ns = 0.0;
    let mut calls = 0;
    let mut converged = rho.sqrt() < tolerance;
    for _ in 0..max_iterations {
        if converged {
            break;
        }
        let ad =
            timed_spmv(&lil, &direction, vector_size, timing, &mut fafnir_ns, &mut two_step_ns);
        calls += 1;
        let denominator = dot(&direction, &ad.y);
        assert!(denominator > 0.0, "matrix is not positive definite");
        let alpha = rho / denominator;
        for i in 0..n {
            x[i] += alpha * direction[i];
            residual[i] -= alpha * ad.y[i];
        }
        let rho_next = dot(&residual, &residual);
        if rho_next.sqrt() < tolerance {
            converged = true;
            break;
        }
        let beta = rho_next / rho;
        for i in 0..n {
            direction[i] = residual[i] + beta * direction[i];
        }
        rho = rho_next;
    }
    AppRun { solution: x, spmv_calls: calls, converged, fafnir_ns, two_step_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn jacobi_solves_a_dominant_system() {
        let coo = gen::banded(60, 2, 21);
        let a = CsrMatrix::from(&coo);
        // Construct b = A·x_true so we know the answer.
        let x_true: Vec<f64> = (0..60).map(|i| ((i % 5) as f64) - 2.0).collect();
        let b = a.multiply(&x_true);
        let run = jacobi_solve(&a, &b, 2048, 1e-10, 500, &SpmvTiming::paper());
        assert!(run.converged, "Jacobi should converge on a dominant system");
        for (got, want) in run.solution.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
        assert!(run.spmv_calls > 1);
        assert!(run.speedup() > 1.0);
    }

    #[test]
    fn pagerank_produces_a_probability_vector() {
        let coo = gen::rmat(7, 1200, 22);
        let a = CsrMatrix::from(&coo);
        let run = pagerank(&a, 0.85, 2048, 1e-9, 200, &SpmvTiming::paper());
        assert!(run.converged);
        let sum: f64 = run.solution.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "ranks sum to 1: {sum}");
        assert!(run.solution.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn pagerank_favours_high_in_degree_nodes() {
        // Star graph: entry (row=i, col=0) is the edge i→0 — everyone links
        // to node 0, so node 0 must end up highest ranked.
        let coo = crate::coo::CooMatrix::from_triplets(
            8,
            8,
            (1..8).map(|i| (i, 0usize, 1.0)).collect::<Vec<_>>(),
        );
        let a = CsrMatrix::from(&coo);
        let run = pagerank(&a, 0.85, 2048, 1e-12, 100, &SpmvTiming::paper());
        let top = run
            .solution
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(top, 0, "hub node should rank first: {:?}", run.solution);
    }

    #[test]
    fn conjugate_gradient_solves_an_spd_system() {
        let coo = gen::spd_banded(80, 3, 31);
        let a = CsrMatrix::from(&coo);
        let x_true: Vec<f64> = (0..80).map(|i| ((i % 7) as f64) * 0.5 - 1.5).collect();
        let b = a.multiply(&x_true);
        let run = conjugate_gradient(&a, &b, 2048, 1e-10, 300, &SpmvTiming::paper());
        assert!(run.converged, "CG should converge on an SPD system");
        for (got, want) in run.solution.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
        assert!(run.speedup() > 1.0);
    }

    #[test]
    fn conjugate_gradient_beats_jacobi_on_iterations() {
        // CG converges in far fewer SpMV calls than Jacobi on the same
        // system — the reason solvers prefer it.
        let coo = gen::spd_banded(200, 2, 32);
        let a = CsrMatrix::from(&coo);
        let b = vec![1.0; 200];
        let timing = SpmvTiming::paper();
        let cg = conjugate_gradient(&a, &b, 2048, 1e-9, 500, &timing);
        let jacobi = jacobi_solve(&a, &b, 2048, 1e-9, 500, &timing);
        assert!(cg.converged && jacobi.converged);
        assert!(
            cg.spmv_calls < jacobi.spmv_calls,
            "cg {} vs jacobi {}",
            cg.spmv_calls,
            jacobi.spmv_calls
        );
    }

    #[test]
    fn app_speedup_is_positive_and_bounded() {
        let coo = gen::banded(100, 4, 23);
        let a = CsrMatrix::from(&coo);
        let b = vec![1.0; 100];
        let run = jacobi_solve(&a, &b, 2048, 1e-8, 100, &SpmvTiming::paper());
        let speedup = run.speedup();
        assert!(speedup > 1.0 && speedup <= 4.6, "speedup {speedup}");
    }
}
