//! Structural characterization of sparse matrices.
//!
//! Fig. 14's commentary ties FAFNIR's advantage to matrix structure
//! ("sparseness is a reason that makes \[some workloads\] more suitable for
//! Fafnir"). This module computes the structural facts that argument rests
//! on: density, degree distributions and their skew, bandwidth, and
//! symmetry — the profile one would report for a SuiteSparse input.

use serde::{Deserialize, Serialize};

use crate::coo::CooMatrix;

/// Structural profile of a sparse matrix.
///
/// # Examples
///
/// ```
/// use fafnir_sparse::{gen, MatrixProfile};
///
/// let profile = MatrixProfile::of(&gen::banded(100, 2, 1));
/// assert_eq!(profile.bandwidth, 2);
/// assert!(profile.row_degree_gini < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixProfile {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Stored non-zeros.
    pub nnz: usize,
    /// `nnz / (rows × cols)`.
    pub density: f64,
    /// Mean non-zeros per row.
    pub mean_row_degree: f64,
    /// Largest row degree.
    pub max_row_degree: usize,
    /// Largest column degree.
    pub max_col_degree: usize,
    /// Gini coefficient of the row-degree distribution (0 = uniform,
    /// → 1 = extremely skewed, e.g. power-law graphs).
    pub row_degree_gini: f64,
    /// Matrix bandwidth: `max |i − j|` over stored entries (0 for empty or
    /// purely diagonal matrices).
    pub bandwidth: usize,
    /// True when the sparsity pattern and values are symmetric (square
    /// matrices only).
    pub symmetric: bool,
}

impl MatrixProfile {
    /// Computes the profile of a matrix.
    #[must_use]
    pub fn of(matrix: &CooMatrix) -> Self {
        let mut row_degree = vec![0usize; matrix.rows()];
        let mut col_degree = vec![0usize; matrix.cols()];
        let mut bandwidth = 0usize;
        for &(row, col, _) in matrix.entries() {
            row_degree[row] += 1;
            col_degree[col] += 1;
            bandwidth = bandwidth.max(row.abs_diff(col));
        }
        let symmetric = matrix.rows() == matrix.cols() && {
            // Entries are sorted; look each (i, j, v) up as (j, i, v). The
            // comparison is relative (with an absolute floor near zero): an
            // absolute 1e-12 cutoff misreported large-valued symmetric
            // matrices as unsymmetric, since values around 1e6 that agree to
            // machine precision still differ by ~1e-10 in absolute terms.
            matrix.entries().iter().all(|&(row, col, value)| {
                row == col
                    || matrix
                        .entries()
                        .binary_search_by(|probe| (probe.0, probe.1).cmp(&(col, row)))
                        .map(|pos| {
                            let mirror = matrix.entries()[pos].2;
                            let scale = value.abs().max(mirror.abs());
                            (mirror - value).abs() <= 1e-12 + 1e-9 * scale
                        })
                        .unwrap_or(false)
            })
        };
        Self {
            rows: matrix.rows(),
            cols: matrix.cols(),
            nnz: matrix.nnz(),
            density: matrix.density(),
            mean_row_degree: matrix.nnz() as f64 / matrix.rows() as f64,
            max_row_degree: row_degree.iter().copied().max().unwrap_or(0),
            max_col_degree: col_degree.iter().copied().max().unwrap_or(0),
            row_degree_gini: gini(&row_degree),
            bandwidth,
            symmetric,
        }
    }

    /// A one-line summary for reports.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}x{}, {} nnz ({:.4} %), row degree mean {:.1} max {} (gini {:.2}), \
             bandwidth {}, {}",
            self.rows,
            self.cols,
            self.nnz,
            self.density * 100.0,
            self.mean_row_degree,
            self.max_row_degree,
            self.row_degree_gini,
            self.bandwidth,
            if self.symmetric { "symmetric" } else { "unsymmetric" },
        )
    }
}

/// Gini coefficient of a non-negative distribution (0 for uniform or empty).
fn gini(values: &[usize]) -> f64 {
    let total: usize = values.iter().sum();
    if values.is_empty() || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<usize> = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let weighted: f64 =
        sorted.iter().enumerate().map(|(rank, &value)| (rank as f64 + 1.0) * value as f64).sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn banded_profile_has_tight_bandwidth_and_low_skew() {
        let matrix = gen::banded(200, 3, 41);
        let profile = MatrixProfile::of(&matrix);
        assert_eq!(profile.bandwidth, 3);
        assert!(profile.row_degree_gini < 0.1, "gini {}", profile.row_degree_gini);
        assert!(!profile.summary().is_empty());
    }

    #[test]
    fn rmat_profile_is_skewed_and_wide() {
        let matrix = gen::rmat(9, 20_000, 42);
        let profile = MatrixProfile::of(&matrix);
        assert!(profile.row_degree_gini > 0.4, "gini {}", profile.row_degree_gini);
        assert!(profile.bandwidth > 100);
        assert!(!profile.symmetric);
    }

    #[test]
    fn spd_profile_is_symmetric() {
        let matrix = gen::spd_banded(80, 2, 43);
        let profile = MatrixProfile::of(&matrix);
        assert!(profile.symmetric);
        assert_eq!(profile.bandwidth, 2);
    }

    #[test]
    fn symmetry_check_tolerates_rounding_on_large_values() {
        // Values around 1e6 that agree to ~machine precision: the mirrored
        // entries differ by 1e-9 in absolute terms, which the old absolute
        // 1e-12 cutoff flagged as unsymmetric.
        let large = CooMatrix::from_triplets(
            3,
            3,
            [
                (0, 0, 2.5e6),
                (0, 1, 1.0e6),
                (1, 0, 1.0e6 + 1.0e-9),
                (1, 2, -3.0e6),
                (2, 1, -3.0e6 - 1.0e-9),
            ],
        );
        assert!(MatrixProfile::of(&large).symmetric, "rounding-level skew is symmetric");

        // A genuinely asymmetric large-valued matrix must still be caught.
        let broken = CooMatrix::from_triplets(2, 2, [(0, 1, 1.0e6), (1, 0, 1.0e6 + 1.0)]);
        assert!(!MatrixProfile::of(&broken).symmetric, "a 1.0 gap at 1e6 is real asymmetry");
    }

    #[test]
    fn uniform_profile_matches_generator_parameters() {
        let matrix = gen::uniform(100, 100, 0.05, 44);
        let profile = MatrixProfile::of(&matrix);
        assert!((profile.density - 0.05).abs() < 0.01);
        assert!((profile.mean_row_degree - 5.0).abs() < 1.0);
        assert!(profile.row_degree_gini < 0.35);
    }

    #[test]
    fn gini_edge_cases() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12, "uniform → 0");
        // One holder of everything → close to (n−1)/n.
        let skewed = gini(&[0, 0, 0, 100]);
        assert!(skewed > 0.7, "got {skewed}");
    }

    #[test]
    fn merge_share_drives_fafnir_suitability() {
        // The mechanism behind Fig. 14's workload-to-workload differences:
        // FAFNIR's advantage shrinks with the fraction of work that lands in
        // merge iterations. Profile + merge share together explain the
        // suite's ordering.
        let timing = crate::SpmvTiming::paper();
        let suite = [
            gen::banded(2_048, 4, 45),
            gen::rmat(11, 120_000, 46),
            gen::uniform(512, 512, 0.01, 47),
        ];
        let mut measured: Vec<(f64, f64)> = Vec::new(); // (merge share, speedup)
        for coo in &suite {
            let lil = crate::lil::LilMatrix::from(coo);
            let x = vec![1.0; coo.cols()];
            let fafnir = crate::fafnir_spmv::execute(&lil, &x, 256);
            let baseline = crate::two_step::execute(&lil, &x, 256);
            let merge_share =
                fafnir.volumes[1..].iter().sum::<u64>() as f64 / fafnir.volumes[0] as f64;
            measured.push((merge_share, crate::two_step::speedup(&timing, &fafnir, &baseline)));
        }
        // Sort by merge share; speedup must be non-increasing along it.
        measured.sort_by(|a, b| a.0.total_cmp(&b.0));
        for window in measured.windows(2) {
            assert!(
                window[0].1 >= window[1].1 - 0.35,
                "speedup should fall as merge share grows: {measured:?}"
            );
        }
        // And profiles discriminate the workload classes.
        let banded_profile = MatrixProfile::of(&suite[0]);
        let graph_profile = MatrixProfile::of(&suite[1]);
        assert!(banded_profile.row_degree_gini < graph_profile.row_degree_gini);
        assert!(banded_profile.bandwidth < graph_profile.bandwidth);
    }
}
