//! Sparse matrix × dense matrix (SpMM) on the FAFNIR tree.
//!
//! The paper's conclusion names matrix algebra — beyond single-vector SpMV —
//! as a target domain. SpMM with `k` right-hand sides runs the vectorized
//! SpMV dataflow once per column of the dense operand; the matrix is
//! streamed from memory each time, so the plan (iterations/rounds) is that
//! of the underlying SpMV and times scale linearly in `k`.

use serde::{Deserialize, Serialize};

use crate::fafnir_spmv::{self, SpmvTiming};
use crate::lil::LilMatrix;
use crate::stream::StreamOps;
use crate::two_step;

/// Result of one SpMM execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpmmRun {
    /// The product, column-major: `y[j]` is `A · x[j]`.
    pub columns: Vec<Vec<f64>>,
    /// Summed operation counts across all SpMVs.
    pub ops: StreamOps,
    /// Total FAFNIR time in nanoseconds.
    pub fafnir_ns: f64,
    /// Total Two-Step time in nanoseconds.
    pub two_step_ns: f64,
}

impl SpmmRun {
    /// FAFNIR's speedup over Two-Step for the whole product.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.fafnir_ns <= 0.0 {
            1.0
        } else {
            self.two_step_ns / self.fafnir_ns
        }
    }
}

/// Computes `Y = A · X` where `X` is given as `k` dense columns.
///
/// # Panics
///
/// Panics if any column's length differs from `matrix.cols()` or `X` is
/// empty.
#[must_use]
pub fn execute(
    matrix: &LilMatrix,
    x_columns: &[Vec<f64>],
    vector_size: usize,
    timing: &SpmvTiming,
) -> SpmmRun {
    assert!(!x_columns.is_empty(), "SpMM needs at least one right-hand side");
    let mut columns = Vec::with_capacity(x_columns.len());
    let mut ops = StreamOps::default();
    let mut fafnir_ns = 0.0;
    let mut two_step_ns = 0.0;
    for x in x_columns {
        assert_eq!(x.len(), matrix.cols(), "operand length mismatch");
        let run = fafnir_spmv::execute(matrix, x, vector_size);
        let baseline = two_step::execute(matrix, x, vector_size);
        fafnir_ns += timing.fafnir_ns(&run);
        two_step_ns += timing.two_step_ns(&baseline);
        ops.merge(&run.ops);
        columns.push(run.y);
    }
    SpmmRun { columns, ops, fafnir_ns, two_step_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::gen;

    #[test]
    fn spmm_matches_per_column_dense_reference() {
        let coo = gen::uniform(60, 80, 0.08, 51);
        let lil = LilMatrix::from(&coo);
        let x_columns: Vec<Vec<f64>> =
            (0..3).map(|k| (0..80).map(|i| (i + k) as f64 * 0.1).collect()).collect();
        let run = execute(&lil, &x_columns, 32, &SpmvTiming::paper());
        assert_eq!(run.columns.len(), 3);
        for (column, x) in run.columns.iter().zip(&x_columns) {
            let want = coo.multiply_dense(x);
            for (a, b) in column.iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn time_scales_linearly_in_rhs_count() {
        let coo = gen::banded(200, 3, 52);
        let lil = LilMatrix::from(&coo);
        let timing = SpmvTiming::paper();
        let one = execute(&lil, &[vec![1.0; 200]], 2048, &timing);
        let four = execute(&lil, &vec![vec![1.0; 200]; 4], 2048, &timing);
        assert!((four.fafnir_ns / one.fafnir_ns - 4.0).abs() < 1e-9);
        assert_eq!(four.ops.multiplies, 4 * one.ops.multiplies);
    }

    #[test]
    fn speedup_matches_underlying_spmv() {
        let coo = gen::rmat(8, 3_000, 53);
        let lil = LilMatrix::from(&coo);
        let timing = SpmvTiming::paper();
        let run = execute(&lil, &vec![vec![0.5; 256]; 2], 2048, &timing);
        assert!(run.speedup() > 1.0 && run.speedup() <= 4.6);
    }

    #[test]
    #[should_panic(expected = "at least one right-hand side")]
    fn empty_rhs_panics() {
        let coo = CooMatrix::from_triplets(2, 2, [(0, 0, 1.0)]);
        let _ = execute(&LilMatrix::from(&coo), &[], 8, &SpmvTiming::paper());
    }
}
