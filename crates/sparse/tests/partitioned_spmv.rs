//! Cross-checks of the partitioned SpMV subsystem: every strategy, on
//! every generator family, must reproduce both the dense reference product
//! and the unpartitioned FAFNIR tree result — and the streaming driver
//! must agree with the in-memory one entry for entry in its accounting.

use fafnir_sparse::{
    execute_partitioned, fafnir_spmv, gen, stream_partitioned, CooMatrix, LilMatrix,
    PartitionReport, PartitionStrategy, SpmvPartition, SpmvTiming,
};

const VECTOR_SIZE: usize = 64;

fn operand(cols: usize) -> Vec<f64> {
    (0..cols).map(|i| -1.5 + (i % 23) as f64 * 0.375).collect()
}

fn assert_close(label: &str, a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "{label}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        let tolerance = 1e-9_f64.max(y.abs() * 1e-12);
        assert!((x - y).abs() < tolerance, "{label}: row {i}: {x} vs {y}");
    }
}

fn suite() -> Vec<(&'static str, CooMatrix)> {
    vec![
        ("uniform", gen::uniform(128, 96, 0.06, 31)),
        ("rmat", gen::rmat(8, 6_000, 32)),
        ("banded", gen::banded(300, 4, 33)),
        ("spd", gen::spd_banded(200, 3, 34)),
    ]
}

fn strategies(ranks: usize) -> [PartitionStrategy; 4] {
    [
        PartitionStrategy::RowBlock,
        PartitionStrategy::NnzBalancedRows,
        PartitionStrategy::ColumnBlock,
        PartitionStrategy::grid(ranks),
    ]
}

#[test]
fn every_strategy_matches_dense_and_serial_on_every_family() {
    for (family, matrix) in suite() {
        let x = operand(matrix.cols());
        let reference = matrix.multiply_dense(&x);
        let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, VECTOR_SIZE);
        assert_close(family, &serial.y, &reference);
        for ranks in [2usize, 6, 12] {
            for strategy in strategies(ranks) {
                let label = format!("{family}/{}/{ranks}", strategy.name());
                let partition = SpmvPartition::new(&matrix, strategy, ranks);
                let run = execute_partitioned(&matrix, &x, &partition, VECTOR_SIZE);
                assert_close(&label, &run.y, &reference);
                assert_close(&label, &run.y, &serial.y);
                assert_eq!(
                    run.rank_runs.iter().map(|r| r.nnz).sum::<u64>(),
                    matrix.nnz() as u64,
                    "{label}: every nonzero must be multiplied exactly once"
                );
            }
        }
    }
}

#[test]
fn streaming_driver_matches_the_in_memory_driver() {
    for (family, matrix) in suite() {
        let x = operand(matrix.cols());
        for strategy in strategies(6) {
            let label = format!("{family}/{}", strategy.name());
            let partition = SpmvPartition::new(&matrix, strategy, 6);
            let in_memory = execute_partitioned(&matrix, &x, &partition, VECTOR_SIZE);
            let streamed = stream_partitioned(&matrix, &x, &partition, VECTOR_SIZE);
            // The band fold is sequential rather than a balanced tree, so
            // values agree to rounding; the accounting must agree exactly.
            assert_close(&label, &streamed.y, &in_memory.y);
            assert_eq!(streamed.sync_entries, in_memory.sync_entries, "{label}");
            assert_eq!(streamed.sync_rounds, in_memory.sync_rounds, "{label}");
            assert_eq!(streamed.rank_runs, in_memory.rank_runs, "{label}");
        }
    }
}

#[test]
fn nnz_balancing_reduces_imbalance_and_time_on_skewed_graphs() {
    let matrix = gen::rmat(9, 40_000, 35);
    let x = operand(matrix.cols());
    let timing = SpmvTiming::paper();
    let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, VECTOR_SIZE);
    let reference = matrix.multiply_dense(&x);
    let mut reports = Vec::new();
    for strategy in [PartitionStrategy::RowBlock, PartitionStrategy::NnzBalancedRows] {
        let partition = SpmvPartition::new(&matrix, strategy, 8);
        let run = execute_partitioned(&matrix, &x, &partition, VECTOR_SIZE);
        reports.push(PartitionReport::new(&run, &serial, &timing, &reference));
    }
    let (row, nnz) = (&reports[0], &reports[1]);
    assert!(
        nnz.nnz_imbalance < row.nnz_imbalance,
        "nnz-balanced {} must beat row-count {} on a power-law graph",
        nnz.nnz_imbalance,
        row.nnz_imbalance
    );
    assert!(nnz.time_imbalance < row.time_imbalance);
    assert!(nnz.speedup > row.speedup, "less straggling, more speedup");
    assert!(nnz.max_abs_error < 1e-9 && row.max_abs_error < 1e-9);
}

#[test]
fn sync_cost_separates_row_from_column_layouts() {
    let matrix = gen::uniform(200, 200, 0.05, 36);
    let x = operand(matrix.cols());
    let timing = SpmvTiming::paper();
    let row = execute_partitioned(
        &matrix,
        &x,
        &SpmvPartition::new(&matrix, PartitionStrategy::RowBlock, 4),
        VECTOR_SIZE,
    );
    let col = execute_partitioned(
        &matrix,
        &x,
        &SpmvPartition::new(&matrix, PartitionStrategy::ColumnBlock, 4),
        VECTOR_SIZE,
    );
    assert_eq!(row.sync_ns(&timing), 0.0, "disjoint output rows need no merge");
    assert!(col.sync_entries > 0 && col.sync_ns(&timing) > 0.0);
    // A grid pays less sync than a pure column split at equal rank count:
    // fewer column bands means fewer cross-rank partials per row band.
    let grid = execute_partitioned(
        &matrix,
        &x,
        &SpmvPartition::new(&matrix, PartitionStrategy::grid(4), 4),
        VECTOR_SIZE,
    );
    assert!(grid.sync_entries < col.sync_entries);
}

#[test]
fn single_rank_partition_degenerates_to_the_serial_run() {
    let matrix = gen::banded(256, 2, 37);
    let x = operand(matrix.cols());
    let serial = fafnir_spmv::execute(&LilMatrix::from(&matrix), &x, VECTOR_SIZE);
    let partition = SpmvPartition::new(&matrix, PartitionStrategy::RowBlock, 1);
    let run = execute_partitioned(&matrix, &x, &partition, VECTOR_SIZE);
    assert_close("single-rank", &run.y, &serial.y);
    assert_eq!(run.sync_entries, 0);
    assert_eq!(run.rank_runs.len(), 1);
    assert_eq!(run.rank_runs[0].volumes, serial.volumes);
    assert_eq!(run.rank_runs[0].ops, serial.ops);
    let timing = SpmvTiming::paper();
    let speedup = run.speedup_over(&serial, &timing);
    assert!((speedup - 1.0).abs() < 1e-9, "one rank is the serial engine: {speedup}");
}
