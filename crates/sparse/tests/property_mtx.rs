//! Property tests for Matrix Market I/O: `parse(write(m))` must be the
//! identity over every generator family the crate ships, including
//! matrices carrying explicit-zero entries (Matrix Market stores what it
//! is given; an explicit zero is a stored entry, not an absence).

use fafnir_sparse::{gen, mtx, CooMatrix};
use proptest::prelude::*;

/// Round-trips a matrix through text and demands exact equality — `f64`'s
/// `Display` prints the shortest digits that re-parse to the same bits, so
/// no tolerance is needed.
fn assert_round_trips(matrix: &CooMatrix) {
    let text = mtx::write(matrix);
    let again = mtx::parse(&text).expect("written matrix must re-parse");
    assert_eq!(matrix, &again, "round trip must be the identity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn uniform_matrices_round_trip(
        rows in 1usize..60,
        cols in 1usize..60,
        density in 0.0f64..0.4,
        seed in 0u64..1_000,
    ) {
        assert_round_trips(&gen::uniform(rows, cols, density, seed));
    }

    #[test]
    fn rmat_matrices_round_trip(scale in 2u32..8, nnz in 1usize..2_000, seed in 0u64..1_000) {
        assert_round_trips(&gen::rmat(scale, nnz, seed));
    }

    #[test]
    fn banded_matrices_round_trip(
        n in 1usize..120,
        bandwidth in 0usize..6,
        seed in 0u64..1_000,
    ) {
        assert_round_trips(&gen::banded(n, bandwidth, seed));
        assert_round_trips(&gen::spd_banded(n, bandwidth, seed));
    }

    #[test]
    fn explicit_zero_entries_survive_the_round_trip(
        n in 3usize..40,
        bandwidth in 0usize..4,
        seed in 0u64..1_000,
        zero_col in 0usize..1_000,
    ) {
        // Plant an explicit zero at a cell the banded pattern never touches
        // (outside the band, so it cannot collide with a stored entry and
        // be summed away by the generator contract).
        let base = gen::banded(n, bandwidth, seed);
        if n > bandwidth + 1 {
            let zero_col = bandwidth + 1 + zero_col % (n - bandwidth - 1);
            let with_zero = CooMatrix::from_triplets(
                n,
                n,
                base.entries().iter().copied().chain([(0, zero_col, 0.0)]),
            );
            assert_eq!(with_zero.nnz(), base.nnz() + 1, "explicit zero is a stored entry");
            assert_round_trips(&with_zero);
        }
    }
}
